package core

import (
	"math/rand/v2"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/stash"
)

// Table is the single-slot McCuckoo hash table (d hash functions, one item
// per bucket, one 2-bit counter per bucket for d = 3).
//
// Storage model: the key/value arrays and the stash flags are "off-chip";
// the counter array is "on-chip". Off-chip bucket accesses and on-chip
// counter accesses are charged to the Meter separately. The table is not
// safe for concurrent use; wrap it in Concurrent for one-writer-many-readers
// access.
type Table struct {
	cfg    Config
	family *hashutil.Family
	meter  memmodel.Meter
	rng    *rand.Rand

	// Off-chip main table, flat-indexed by table*n + bucket. Key and value
	// are interleaved so one bucket is one 16-byte cell: a lookup hit reads
	// the value from the cache line the key probe already pulled in, which
	// is also how the paper's off-chip model works (the value travels with
	// the bucket in a single access).
	cells []kv.Entry
	// flags are the 1-bit stash flags stored alongside each bucket
	// off-chip (§III.E). Reading a bucket returns its flag for free;
	// setting a flag costs one off-chip write. Stale flags only ever
	// cost extra stash probes, never correctness — but only if every
	// mutation goes through the charged setters below.
	//
	//mcvet:restricted flags
	flags *bitpack.Bitset

	// On-chip counter array: counters.Get(i) is the number of copies the
	// item in bucket i has, 0 for empty, tombstoneVal for deleted marks.
	// Counter transitions carry the paper's invariants (never overwrite a
	// counter-1 bucket; decrement only on kick-out or delete), so raw
	// writes are restricted to the sanctioned setters.
	//
	//mcvet:restricted counters
	counters     *bitpack.Counters
	tombstoneVal uint64 // 0 when tombstones are disabled
	// kickCounts backs the MinCounter resolver (5-bit on-chip counters,
	// one per bucket). Nil under RandomWalk.
	//
	//mcvet:restricted kickcounts
	kickCounts *bitpack.Counters

	overflow *stash.Stash
	// deletedAny flips when the first ResetCounters deletion happens;
	// from then on the zero-counter lookup shortcut and the counter-based
	// stash pre-screen are disabled (§III.F).
	deletedAny bool

	size            int // distinct items in the main table
	copiesTotal     int // live physical copies in the main table
	redundantWrites int64
	stats           kv.Stats
	// growing guards the auto-grow policy against re-entry while Grow's
	// own reinsertions stash items.
	growing bool
}

// New creates a single-slot McCuckoo table. As the constructor it owns the
// initial installation of every restricted array.
//
//mcvet:setter counters flags kickcounts
func New(cfg Config) (*Table, error) {
	if err := cfg.normalize(false); err != nil {
		return nil, err
	}
	family, err := newFamily(cfg)
	if err != nil {
		return nil, err
	}
	buckets := cfg.D * cfg.BucketsPerTable
	counters, err := bitpack.NewCounters(buckets, cfg.counterWidth())
	if err != nil {
		return nil, err
	}
	flags, err := bitpack.NewBitset(buckets)
	if err != nil {
		return nil, err
	}
	t := &Table{
		cfg:      cfg,
		family:   family,
		rng:      rand.New(rand.NewPCG(cfg.Seed, hashutil.Mix64(cfg.Seed+2))),
		cells:    make([]kv.Entry, buckets),
		flags:    flags,
		counters: counters,
	}
	if cfg.Deletion == Tombstone {
		t.tombstoneVal = uint64(cfg.D) + 1
	}
	if cfg.Policy == kv.MinCounter {
		t.kickCounts, err = bitpack.NewCounters(buckets, 5)
		if err != nil {
			return nil, err
		}
	}
	if cfg.StashEnabled {
		t.overflow, err = stash.New(4, cfg.StashMax, cfg.Seed, &t.meter)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// pickVictimTable chooses which candidate to evict from during the random
// walk: uniformly at random under RandomWalk, or the candidate with the
// smallest 5-bit kick counter under MinCounter. Both avoid bouncing straight
// back to prevTable. Saturating the kick counter here is the only sanctioned
// kickCounts mutation outside construction and rebuild.
//
//mcvet:hotpath
//mcvet:setter kickcounts
func (t *Table) pickVictimTable(cand []int, prevTable int) int {
	if t.kickCounts != nil {
		best, bestCount := -1, uint64(1<<62)
		for i := range cand {
			if i == prevTable {
				continue
			}
			t.meter.ReadOn(1)
			c := t.kickCounts.Get(t.bucketIndex(i, cand[i]))
			if c < bestCount || (c == bestCount && t.rng.IntN(2) == 0) {
				best, bestCount = i, c
			}
		}
		bi := t.bucketIndex(best, cand[best])
		if v := t.kickCounts.Get(bi); v < t.kickCounts.Max() {
			t.kickCounts.Set(bi, v+1)
			t.meter.WriteOn(1)
		}
		return best
	}
	for {
		i := t.rng.IntN(len(cand))
		if i != prevTable {
			return i
		}
	}
}

// bucketIndex returns the flat index of bucket `bucket` in subtable `table`.
//
//mcvet:hotpath
func (t *Table) bucketIndex(table, bucket int) int {
	return table*t.cfg.BucketsPerTable + bucket
}

// counterAt reads the on-chip counter of one candidate, charging the access.
//
//mcvet:hotpath
func (t *Table) counterAt(table, bucket int) uint64 {
	t.meter.ReadOn(1)
	return t.counters.Get(t.bucketIndex(table, bucket))
}

// setCounter writes an on-chip counter, charging the access. It is the
// sanctioned mutation path for the counter array; callers are responsible
// for the transition being one the paper allows.
//
//mcvet:hotpath
//mcvet:setter counters
func (t *Table) setCounter(table, bucket int, v uint64) {
	t.meter.WriteOn(1)
	t.counters.Set(t.bucketIndex(table, bucket), v)
}

// isFree reports whether a counter value means the bucket may be written by
// an insertion: empty, or marked deleted in tombstone mode.
//
//mcvet:hotpath
func (t *Table) isFree(counter uint64) bool {
	return counter == 0 || (t.tombstoneVal != 0 && counter == t.tombstoneVal)
}

// readBucket performs one off-chip bucket read, returning the stored key.
// The bucket's stash flag and value travel with the same access for free;
// callers that need them read t.flags / the cell directly without a further
// charge.
//
//mcvet:hotpath
func (t *Table) readBucket(table, bucket int) uint64 {
	t.meter.ReadOff(1)
	return t.cells[t.bucketIndex(table, bucket)].Key
}

// readEntry performs one off-chip bucket read, returning the full entry.
//
//mcvet:hotpath
func (t *Table) readEntry(table, bucket int) kv.Entry {
	t.meter.ReadOff(1)
	return t.cells[t.bucketIndex(table, bucket)]
}

// writeBucket performs one off-chip bucket write.
//
//mcvet:hotpath
func (t *Table) writeBucket(table, bucket int, e kv.Entry) {
	t.meter.WriteOff(1)
	t.cells[t.bucketIndex(table, bucket)] = e
}

// setStashFlag raises the stash flag of flat bucket idx, charging the
// off-chip write only on an actual 0→1 transition. It is the sanctioned
// mutation path for flags on the insert side.
//
//mcvet:hotpath
//mcvet:setter flags
func (t *Table) setStashFlag(idx int) {
	if !t.flags.Get(idx) {
		t.flags.Set(idx)
		t.meter.WriteOff(1)
	}
}

// clearStashFlag lowers the stash flag of flat bucket idx, charging the
// off-chip write only on an actual 1→0 transition. Only flag-refresh and
// rebuild paths may lower flags: a premature clear would create stash
// false negatives, which break the lookup contract.
//
//mcvet:setter flags
func (t *Table) clearStashFlag(idx int) {
	if t.flags.Get(idx) {
		t.flags.Clear(idx)
		t.meter.WriteOff(1)
	}
}

// Len returns the number of distinct live items, stash included.
func (t *Table) Len() int { return t.size + t.StashLen() }

// Capacity returns the total number of buckets.
func (t *Table) Capacity() int { return t.cfg.D * t.cfg.BucketsPerTable }

// LoadRatio returns distinct items over table size, the paper's load metric.
func (t *Table) LoadRatio() float64 { return float64(t.Len()) / float64(t.Capacity()) }

// Meter exposes the memory-traffic counters.
func (t *Table) Meter() *memmodel.Meter { return &t.meter }

// Stats exposes lifetime operation counts.
func (t *Table) Stats() kv.Stats { return t.stats }

// StashLen returns the current stash population.
func (t *Table) StashLen() int {
	if t.overflow == nil {
		return 0
	}
	return t.overflow.Len()
}

// Copies returns the number of live physical copies currently stored in the
// main table (>= Len() - StashLen(); the surplus is the redundancy).
func (t *Table) Copies() int { return t.copiesTotal }

// RedundantWrites returns the lifetime count of proactive redundant copy
// writes (Theorem 2 bounds this by S·(1 + Σ_{t=3..d} 1/t)).
func (t *Table) RedundantWrites() int64 { return t.redundantWrites }

// OnChipBytes returns the size of the on-chip counter array.
func (t *Table) OnChipBytes() int { return t.counters.SizeBytes() }

// reseedRNG re-derives the random-walk generator after a snapshot load so
// subsequent kick sequences are deterministic for the (seed, size) pair.
func (t *Table) reseedRNG() {
	t.rng = rand.New(rand.NewPCG(t.cfg.Seed, hashutil.Mix64(t.cfg.Seed+uint64(t.size)+2)))
}
