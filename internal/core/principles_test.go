package core

// White-box conformance tests: each test brings a table into a precisely
// characterized state using only real insertions (so every intermediate
// state is reachable), then asserts that the next operation makes the exact
// decision the paper's principles prescribe (§III.B.1–2) — not merely that
// the table stays correct.

import (
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// counterPattern returns the multiset of x's candidate counter values as a
// sorted [3]uint64 (d = 3 in these tests).
func counterPattern(tab *Table, x uint64) [3]uint64 {
	var cand [hashutil.MaxD]int
	tab.family.Indexes(x, cand[:])
	var p [3]uint64
	for i := 0; i < 3; i++ {
		p[i] = tab.counters.Get(tab.bucketIndex(i, cand[i]))
	}
	// Sort the three values.
	if p[0] > p[1] {
		p[0], p[1] = p[1], p[0]
	}
	if p[1] > p[2] {
		p[1], p[2] = p[2], p[1]
	}
	if p[0] > p[1] {
		p[0], p[1] = p[1], p[0]
	}
	return p
}

// findKeyWithPattern fills the table with unique keys until it can find a
// fresh key whose candidate counters form the wanted (sorted) pattern. It
// returns the key; fill keys come from fillSeed, probe keys from probeSeed.
func findKeyWithPattern(t *testing.T, tab *Table, want [3]uint64, fillSeed, probeSeed uint64, maxLoad float64) uint64 {
	t.Helper()
	fs := hashutil.Mix64(fillSeed)
	ps := hashutil.Mix64(probeSeed)
	inserted := map[uint64]bool{}
	for {
		// Probe for the pattern among keys not yet inserted.
		for probe := 0; probe < 20000; probe++ {
			x := hashutil.SplitMix64(&ps)
			if inserted[x] {
				continue
			}
			if counterPattern(tab, x) == want {
				return x
			}
		}
		// Pattern not found at this load: add more items.
		if tab.LoadRatio() >= maxLoad {
			t.Skipf("pattern %v not found up to load %.2f", want, maxLoad)
		}
		for i := 0; i < tab.Capacity()/50; i++ {
			k := hashutil.SplitMix64(&fs)
			if tab.Insert(k, k).Status == kv.Failed {
				t.Fatal("fill failed")
			}
			inserted[k] = true
		}
	}
}

// keyAtCandidate returns the key stored in x's candidate bucket in the
// given subtable (white-box read, no traffic).
func keyAtCandidate(tab *Table, x uint64, table int) uint64 {
	var cand [hashutil.MaxD]int
	tab.family.Indexes(x, cand[:])
	return tab.cells[tab.bucketIndex(table, cand[table])].Key
}

func newPrincipleTable(t *testing.T) *Table {
	return mustNew(t, Config{BucketsPerTable: 256, Seed: 201, AssumeUniqueKeys: true,
		StashEnabled: true})
}

// Principle 1: with counters {0,0,1} the new item occupies exactly the two
// empty candidates and leaves the sole copy alone.
func TestPrincipleOneOccupyAllEmpties(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{0, 0, 1}, 1, 2, 0.95)
	// Identify the sole-copy occupant before the insert.
	var blocker uint64
	var cand [hashutil.MaxD]int
	tab.family.Indexes(x, cand[:])
	for i := 0; i < 3; i++ {
		if tab.counters.Get(tab.bucketIndex(i, cand[i])) == 1 {
			blocker = keyAtCandidate(tab, x, i)
		}
	}
	blockerCopies := tab.CopyCount(blocker)

	tab.Insert(x, x)
	if got := tab.CopyCount(x); got != 2 {
		t.Fatalf("x has %d copies, want 2 (both empty candidates)", got)
	}
	if got := tab.CopyCount(blocker); got != blockerCopies {
		t.Fatalf("sole-copy occupant went %d -> %d copies", blockerCopies, got)
	}
	checkInv(t, tab)
}

// Principle 2: with counters {1,1,1} a real collision occurs — the insert
// must relocate (kicks > 0) or stash, and no sole copy is destroyed.
func TestPrincipleTwoNeverOverwriteSoleCopies(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{1, 1, 1}, 3, 4, 0.95)
	occupants := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		occupants[i] = keyAtCandidate(tab, x, i)
	}
	sizeBefore := tab.Len()

	out := tab.Insert(x, x)
	if out.Status == kv.Placed && out.Kicks == 0 {
		t.Fatalf("all-sole-copy candidates placed without a kick: %+v", out)
	}
	for i, occ := range occupants {
		if _, ok := tab.Lookup(occ); !ok {
			t.Fatalf("occupant %d (%#x) lost", i, occ)
		}
	}
	if _, ok := tab.Lookup(x); !ok {
		t.Fatal("x lost")
	}
	if tab.Len() != sizeBefore+1 {
		t.Fatalf("Len went %d -> %d, want +1", sizeBefore, tab.Len())
	}
	checkInv(t, tab)
}

// Principle 3: with counters {0,2,3} the item takes the empty candidate
// (copies=1), claims a copy from the 3-copy victim (3 >= 1+2), and leaves
// the 2-copy item untouched (2 < 2+2).
func TestPrincipleThreeStopCondition(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{0, 2, 3}, 5, 6, 0.95)
	var cand [hashutil.MaxD]int
	tab.family.Indexes(x, cand[:])
	var tri, duo uint64
	for i := 0; i < 3; i++ {
		switch tab.counters.Get(tab.bucketIndex(i, cand[i])) {
		case 3:
			tri = keyAtCandidate(tab, x, i)
		case 2:
			duo = keyAtCandidate(tab, x, i)
		}
	}
	tab.Insert(x, x)
	if got := tab.CopyCount(x); got != 2 {
		t.Fatalf("x has %d copies, want 2 (empty + one claim from the 3-copy victim)", got)
	}
	if got := tab.CopyCount(tri); got != 2 {
		t.Fatalf("3-copy victim has %d copies, want 2", got)
	}
	if got := tab.CopyCount(duo); got != 2 {
		t.Fatalf("2-copy item has %d copies, want 2 (untouched)", got)
	}
	checkInv(t, tab)
}

// Principle 3, zero-empty case: with counters {2,2,2} exactly one copy is
// claimed (after the first overwrite, 2 < 1+2 stops the loop).
func TestPrincipleThreeSingleClaimFromTwos(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{2, 2, 2}, 7, 8, 0.95)
	occupants := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		occupants[i] = keyAtCandidate(tab, x, i)
	}
	tab.Insert(x, x)
	if got := tab.CopyCount(x); got != 1 {
		t.Fatalf("x has %d copies, want exactly 1", got)
	}
	demoted := 0
	for _, occ := range occupants {
		if tab.CopyCount(occ) == 1 {
			demoted++
		}
	}
	// The three occupants may include duplicates (the same item can hold
	// two of x's candidates); in the common all-distinct case exactly one
	// is demoted to a sole copy.
	if demoted < 1 {
		t.Fatalf("no victim demoted; occupants have %d/%d/%d copies",
			tab.CopyCount(occupants[0]), tab.CopyCount(occupants[1]), tab.CopyCount(occupants[2]))
	}
	checkInv(t, tab)
}

// Lookup rule 1: a zero counter among the candidates answers a miss with
// zero off-chip reads.
func TestLookupRuleOneZeroCounter(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{0, 3, 3}, 9, 10, 0.60)
	before := tab.Meter().Snapshot()
	if _, ok := tab.Lookup(x); ok {
		t.Fatal("phantom hit")
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipReads != 0 {
		t.Fatalf("rule-1 miss cost %d reads, want 0", delta.OffChipReads)
	}
}

// Lookup rule 2: partitions smaller than their counter value are skipped —
// counters {2,3,3} on a missing key cost zero reads (the v=3 partition has
// size 2, the v=2 partition size 1).
func TestLookupRuleTwoSkipsSmallPartitions(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{2, 3, 3}, 11, 12, 0.70)
	before := tab.Meter().Snapshot()
	if _, ok := tab.Lookup(x); ok {
		t.Fatal("phantom hit")
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipReads != 0 {
		t.Fatalf("miss with impossible partitions cost %d reads, want 0", delta.OffChipReads)
	}
}

// Lookup rule 3: a partition of size S and value V needs at most S-V+1
// reads; for a freshly inserted 3-copy item one read suffices.
func TestLookupRuleThreeBudget(t *testing.T) {
	tab := newPrincipleTable(t)
	x := findKeyWithPattern(t, tab, [3]uint64{0, 0, 0}, 13, 14, 0.10)
	tab.Insert(x, x) // occupies all three candidates, counters 3/3/3
	before := tab.Meter().Snapshot()
	if _, ok := tab.Lookup(x); !ok {
		t.Fatal("x missing")
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipReads != 1 {
		t.Fatalf("3-copy lookup cost %d reads, want 1 (S-V+1 = 1)", delta.OffChipReads)
	}
}

// Deletion principle (§III.B.3): deleting an item with counters {2,2,x}
// resets exactly its copies' counters, writes nothing off-chip, and later
// lookups of the deleted key miss.
func TestDeletionPrincipleCounterOnly(t *testing.T) {
	tab := newPrincipleTable(t)
	// Produce a 2-copy item: find a key with one sole-copy blocker and
	// insert it (principle 1 gives it the two empties).
	x := findKeyWithPattern(t, tab, [3]uint64{0, 0, 1}, 15, 16, 0.95)
	tab.Insert(x, x)
	if tab.CopyCount(x) != 2 {
		t.Fatalf("setup failed: x has %d copies", tab.CopyCount(x))
	}
	before := tab.Meter().Snapshot()
	if !tab.Delete(x) {
		t.Fatal("delete failed")
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipWrites != 0 {
		t.Fatalf("deletion cost %d off-chip writes, want 0", delta.OffChipWrites)
	}
	if tab.CopyCount(x) != 0 {
		t.Fatalf("x still has %d live copies", tab.CopyCount(x))
	}
	if _, ok := tab.Lookup(x); ok {
		t.Fatal("deleted key still found")
	}
	checkInv(t, tab)
}

// Theorem 3: the lookup principles always narrow the checking scope below
// d unless every candidate counter is exactly 1 — verified empirically over
// thousands of lookups at many loads.
func TestTheoremThreeAlwaysNarrows(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 1024, Seed: 211, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillKeys(212, int(0.92*float64(tab.Capacity())))
	probes := fillKeys(213, 2000)
	checkOne := func(x uint64) {
		var cand [hashutil.MaxD]int
		tab.family.Indexes(x, cand[:])
		allOnes := true
		for i := 0; i < 3; i++ {
			if tab.counters.Get(tab.bucketIndex(i, cand[i])) != 1 {
				allOnes = false
			}
		}
		before := tab.Meter().Snapshot()
		tab.Lookup(x)
		reads := tab.Meter().Snapshot().Sub(before).OffChipReads
		if !allOnes && reads >= 3 {
			t.Fatalf("lookup with counters not all 1 cost %d reads (Theorem 3 violated)", reads)
		}
		if reads > 3 {
			t.Fatalf("lookup cost %d main-table reads, exceeds d", reads)
		}
	}
	for i, k := range keys {
		tab.Insert(k, k)
		if i%97 == 0 {
			checkOne(k)                     // existing item
			checkOne(probes[i%len(probes)]) // likely missing item
		}
	}
}
