package core

import (
	"fmt"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// PathMove is one hop of a cuckoo path: the item currently in (FromTable,
// FromBucket) gains a copy in (ToTable, ToBucket) — its own candidate bucket
// in another subtable — after which its FromBucket copy becomes redundant
// and can be overwritten by the previous hop's item.
type PathMove struct {
	Key        uint64
	FromTable  int
	FromBucket int
	ToTable    int
	ToBucket   int
}

// FindPath searches for a cuckoo path that frees one of key's candidate
// buckets without mutating the table (§III.H: MemC3 introduced cuckoo-path
// insertion but "did not develop efficient method to quickly find one";
// McCuckoo's counters do exactly that — the walk ends at the first bucket
// whose counter is not 1, i.e. free or redundantly occupied).
//
// The returned path is ordered from key's bucket outward: path[0] moves the
// item that currently blocks key, path[len-1] ends in a usable bucket.
// ok is false when no path within MaxLoop hops exists; the caller should
// stash key. FindPath only reads (buckets along the path are read to learn
// victim keys; the traffic is charged), so a concurrent wrapper may run it
// under a read lock.
func (t *Table) FindPath(key uint64) ([]PathMove, bool) {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	// The path only makes sense when key itself cannot place: every
	// candidate holds a sole copy. Walk from a random candidate. Paths
	// must be bucket-disjoint or the back-to-front execution would act
	// on stale assumptions, so visited buckets are never re-entered —
	// a built-in loop guard on top of MaxLoop.
	path := make([]PathMove, 0, 8)
	curTable := t.rng.IntN(t.cfg.D)
	curBucket := cand[curTable]
	visited := map[int]bool{t.bucketIndex(curTable, curBucket): true}
	for hop := 0; hop < t.cfg.MaxLoop; hop++ {
		victim := t.readBucket(curTable, curBucket)
		var vcand [hashutil.MaxD]int
		t.family.Indexes(victim, vcand[:])

		// Does the victim have a usable alternative bucket? Usable
		// means counter != 1 (free, tombstone, or redundant copy).
		dest := -1
		for j := 0; j < t.cfg.D; j++ {
			if j == curTable || visited[t.bucketIndex(j, vcand[j])] {
				continue
			}
			if c := t.counterAt(j, vcand[j]); c != 1 {
				dest = j
				break
			}
		}
		if dest >= 0 {
			path = append(path, PathMove{
				Key:       victim,
				FromTable: curTable, FromBucket: curBucket,
				ToTable: dest, ToBucket: vcand[dest],
			})
			return path, true
		}
		// No usable alternative: extend the walk through one of the
		// victim's unvisited candidates, chosen at random.
		var opts [hashutil.MaxD]int
		nOpts := 0
		for j := 0; j < t.cfg.D; j++ {
			if j != curTable && !visited[t.bucketIndex(j, vcand[j])] {
				opts[nOpts] = j
				nOpts++
			}
		}
		if nOpts == 0 {
			return nil, false // walk boxed in by its own trail
		}
		next := opts[t.rng.IntN(nOpts)]
		path = append(path, PathMove{
			Key:       victim,
			FromTable: curTable, FromBucket: curBucket,
			ToTable: next, ToBucket: vcand[next],
		})
		curTable, curBucket = next, vcand[next]
		visited[t.bucketIndex(curTable, curBucket)] = true
	}
	return nil, false
}

// ApplyMove executes one path hop, last hop first. The move copies the
// item into its destination bucket and updates counters; the item briefly
// has one copy more than before — a state McCuckoo represents natively, so
// the table satisfies all invariants between moves and readers never lose
// an item. The destination must be usable (counter != 1), which holds for
// the final hop by construction and for earlier hops because the later
// item's departure left a redundant copy behind.
func (t *Table) ApplyMove(m PathMove) error {
	destCnt := t.counterAt(m.ToTable, m.ToBucket)
	switch {
	case t.isFree(destCnt):
		// Plain copy into an empty bucket.
	case destCnt >= 2:
		// Overwrite a redundant copy of the destination's occupant.
		occKey := t.readBucket(m.ToTable, m.ToBucket)
		t.victimLostCopy(occKey, m.ToTable, destCnt)
	default:
		return fmt.Errorf("core: path move destination (%d,%d) holds a sole copy", m.ToTable, m.ToBucket)
	}
	// Verify the mover is still where the path found it (it must be:
	// the single-writer contract means nothing else mutates).
	src := t.readEntry(m.FromTable, m.FromBucket)
	if src.Key != m.Key {
		return fmt.Errorf("core: path move source changed: want key %#x, found %#x", m.Key, src.Key)
	}
	srcCnt := t.counterAt(m.FromTable, m.FromBucket)
	t.writeBucket(m.ToTable, m.ToBucket, src)
	// The mover now has one more copy; raise the counters of all its
	// copies. Its copies are exactly the buckets the path knows about
	// plus any pre-existing ones — but path moves only ever displace
	// sole copies (counter 1), so the mover's copies are FromBucket and
	// ToBucket.
	if srcCnt != 1 {
		return fmt.Errorf("core: path mover %#x had counter %d, want 1", m.Key, srcCnt)
	}
	t.setCounter(m.FromTable, m.FromBucket, 2)
	t.setCounter(m.ToTable, m.ToBucket, 2)
	t.copiesTotal++
	t.redundantWrites++
	return nil
}

// TryPlace attempts principle-based placement (or an in-place update) of
// key/value. done is false exactly when a real collision occurred and a
// cuckoo path is needed. First stage of the pathwise insertion protocol.
func (t *Table) TryPlace(key, value uint64) (out kv.Outcome, done bool) {
	t.stats.Inserts++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	if !t.cfg.AssumeUniqueKeys {
		if out, handled := t.updateExisting(key, value, cand[:t.cfg.D]); handled {
			return out, true
		}
	}
	if copies := t.place(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D]); copies > 0 {
		t.size++
		return kv.Outcome{Status: kv.Placed}, true
	}
	return kv.Outcome{}, false
}

// StashOverflow sends key/value to the stash after a failed path search.
// Final stage of the pathwise protocol on the failure branch.
func (t *Table) StashOverflow(key, value uint64) kv.Outcome {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	return t.overflowInsert(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D], 0)
}

// FinishPath installs key/value into the candidate bucket the path head
// vacated (after every ApplyMove has executed, that bucket holds a
// redundant copy of the head's item). Final stage of the pathwise protocol
// on the success branch.
func (t *Table) FinishPath(key, value uint64, head PathMove, pathLen int) kv.Outcome {
	t.victimLostCopy(head.Key, head.FromTable, 2)
	t.writeBucket(head.FromTable, head.FromBucket, kv.Entry{Key: key, Value: value})
	t.setCounter(head.FromTable, head.FromBucket, 1)
	t.copiesTotal++
	t.size++
	t.stats.Kicks += int64(pathLen)
	return kv.Outcome{Status: kv.Placed, Kicks: pathLen}
}

// InsertPathwise inserts key/value using two-phase cuckoo-path execution:
// the path is discovered first, then executed from its far end backwards,
// so the table is a valid McCuckoo table after every step. Functionally
// equivalent to Insert; the point is bounded mutation steps for concurrent
// wrappers (Concurrent.InsertPathwise interleaves readers between steps).
func (t *Table) InsertPathwise(key, value uint64) kv.Outcome {
	if out, done := t.TryPlace(key, value); done {
		return out
	}
	path, ok := t.FindPath(key)
	if !ok {
		return t.StashOverflow(key, value)
	}
	for i := len(path) - 1; i >= 0; i-- {
		if err := t.ApplyMove(path[i]); err != nil {
			// Unreachable under the single-writer contract; fail
			// loudly rather than corrupt the table.
			panic(err)
		}
	}
	return t.FinishPath(key, value, path[0], len(path))
}
