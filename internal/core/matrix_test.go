package core

import (
	"fmt"
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// TestConfigMatrixSingle exercises every supported single-slot
// configuration (d × deletion mode × policy × prescreen) through a mixed
// workload against a model, with invariants verified at the end. The paper
// evaluates d = 3 only; the implementation claims d in [2,4] and this test
// backs that claim.
func TestConfigMatrixSingle(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for _, del := range []DeletionMode{ResetCounters, Tombstone} {
			for _, pol := range []kv.KickPolicy{kv.RandomWalk, kv.MinCounter} {
				for _, noPre := range []bool{false, true} {
					name := fmt.Sprintf("d=%d/%v/%v/noPre=%v", d, del, pol, noPre)
					t.Run(name, func(t *testing.T) {
						cfg := Config{
							D: d, BucketsPerTable: 256, Seed: uint64(d) * 101,
							MaxLoop: 100, Deletion: del, Policy: pol,
							DisablePrescreen: noPre, StashEnabled: true,
						}
						runMatrixWorkload(t, func() (kv.Table, func() error) {
							tab, err := New(cfg)
							if err != nil {
								t.Fatal(err)
							}
							return tab, tab.CheckInvariants
						})
					})
				}
			}
		}
	}
}

// TestConfigMatrixBlocked does the same for the blocked table across
// d × l × deletion × policy.
func TestConfigMatrixBlocked(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for _, l := range []int{2, 3, 4} {
			for _, del := range []DeletionMode{ResetCounters, Tombstone} {
				name := fmt.Sprintf("d=%d/l=%d/%v", d, l, del)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						D: d, Slots: l, BucketsPerTable: 96,
						Seed: uint64(d*10 + l), MaxLoop: 100,
						Deletion: del, StashEnabled: true,
					}
					runMatrixWorkload(t, func() (kv.Table, func() error) {
						tab, err := NewBlocked(cfg)
						if err != nil {
							t.Fatal(err)
						}
						return tab, tab.CheckInvariants
					})
				})
			}
		}
	}
}

// runMatrixWorkload pushes a mixed insert/lookup/delete stream through the
// table and cross-checks against a map model.
func runMatrixWorkload(t *testing.T, build func() (kv.Table, func() error)) {
	t.Helper()
	tab, check := build()
	model := map[uint64]uint64{}
	keySpace := uint64(float64(tab.Capacity()) * 0.8)
	s := hashutil.Mix64(uint64(tab.Capacity()))
	for i := 0; i < 5000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % keySpace
		switch (r >> 32) % 4 {
		case 0, 1:
			if tab.Insert(key, r).Status != kv.Failed {
				model[key] = r
			}
		case 2:
			got, ok := tab.Lookup(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), want (%d,%v)", i, key, got, ok, want, wok)
			}
		case 3:
			_, wok := model[key]
			if got := tab.Delete(key); got != wok {
				t.Fatalf("op %d: delete(%d) = %v, want %v", i, key, got, wok)
			}
			delete(model, key)
		}
	}
	if tab.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tab.Len(), len(model))
	}
	if err := check(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleHashingTables runs both table kinds with double hashing through
// the mixed-workload model check and a high-load fill.
func TestDoubleHashingTables(t *testing.T) {
	cfg := Config{D: 3, BucketsPerTable: 512, Seed: 301, MaxLoop: 200,
		DoubleHashing: true, StashEnabled: true}
	runMatrixWorkload(t, func() (kv.Table, func() error) {
		tab, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab, tab.CheckInvariants
	})
	bcfg := cfg
	bcfg.Slots = 3
	bcfg.BucketsPerTable = 170
	runMatrixWorkload(t, func() (kv.Table, func() error) {
		tab, err := NewBlocked(bcfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab, tab.CheckInvariants
	})
	// Double hashing must sustain the usual loads (the [21] claim).
	tab := mustNew(t, Config{BucketsPerTable: 2048, Seed: 302, DoubleHashing: true,
		AssumeUniqueKeys: true, StashEnabled: true})
	keys := fillKeys(303, int(0.90*float64(tab.Capacity())))
	for _, k := range keys {
		if tab.Insert(k, k).Status == kv.Failed {
			t.Fatal("double-hashed fill failed")
		}
	}
	if stashed := tab.StashLen(); stashed > len(keys)/50 {
		t.Errorf("double hashing stashed %d of %d at 90%% load", stashed, len(keys))
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatal("key lost under double hashing")
		}
	}
	// Snapshot round-trip preserves the double-hashing family.
	var buf writerBuffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:200] {
		if _, ok := got.Lookup(k); !ok {
			t.Fatal("key lost across double-hashed snapshot")
		}
	}
}
