package core

import (
	"bytes"
	"io"
	"testing"

	"mccuckoo/internal/kv"
)

// driveOps interprets a byte stream as table operations and cross-checks
// the table against a map model, then validates invariants. Shared by the
// fuzz targets for both table kinds.
func driveOps(t interface {
	Fatalf(format string, args ...any)
}, tab kv.Table, check func() error, data []byte) {
	model := map[uint64]uint64{}
	for i := 0; i+2 < len(data); i += 3 {
		op := data[i] % 4
		key := uint64(data[i+1]) | uint64(data[i+2])<<8&0x100 // 512-key space
		val := uint64(data[i+2])
		switch op {
		case 0, 1:
			out := tab.Insert(key, val)
			if out.Status != kv.Failed {
				model[key] = val
			}
		case 2:
			got, ok := tab.Lookup(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("lookup(%d) = (%d,%v), model (%d,%v)", key, got, ok, want, wok)
			}
		case 3:
			_, wok := model[key]
			if got := tab.Delete(key); got != wok {
				t.Fatalf("delete(%d) = %v, model %v", key, got, wok)
			}
			delete(model, key)
		}
	}
	if tab.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tab.Len(), len(model))
	}
	if err := check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0, 42, 1}, 100)) // hammer one key
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3, 9, 8}, 200))
	long := make([]byte, 3000)
	for i := range long {
		long[i] = byte(i * 131)
	}
	f.Add(long)
}

func FuzzTableOps(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Tiny table so the fuzzer reaches overflow and deletion-reuse
		// states quickly.
		tab, err := New(Config{BucketsPerTable: 32, Seed: 1, MaxLoop: 20,
			StashEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		driveOps(t, tab, tab.CheckInvariants, data)
	})
}

func FuzzTableOpsTombstone(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := New(Config{BucketsPerTable: 32, Seed: 2, MaxLoop: 20,
			StashEnabled: true, Deletion: Tombstone})
		if err != nil {
			t.Fatal(err)
		}
		driveOps(t, tab, tab.CheckInvariants, data)
	})
}

func FuzzBlockedOps(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := NewBlocked(Config{BucketsPerTable: 16, Seed: 3, MaxLoop: 20,
			StashEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		driveOps(t, tab, tab.CheckInvariants, data)
	})
}

// FuzzLoad feeds arbitrary bytes to the snapshot loaders: they must reject
// garbage with an error, never panic, and anything they do accept must pass
// the invariant check (Load runs it internally).
func FuzzLoad(f *testing.F) {
	// Seed with genuine snapshots covering the config space — every section
	// layout the loaders can meet — so mutations explore the format rather
	// than bouncing off the magic check.
	seedSnapshot := func(blocked bool, cfg Config, nKeys uint64, deletions bool) {
		var tab interface {
			kv.Table
			io.WriterTo
		}
		var err error
		if blocked {
			tab, err = NewBlocked(cfg)
		} else {
			tab, err = New(cfg)
		}
		if err != nil {
			f.Fatal(err)
		}
		for k := uint64(1); k < nKeys; k++ {
			tab.Insert(k*0x9e37, k)
		}
		if deletions {
			for k := uint64(1); k < nKeys; k += 3 {
				tab.Delete(k * 0x9e37)
			}
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A few bit-flipped variants start the corpus inside the rejection
		// paths of each section.
		for _, off := range []int{2, len(buf.Bytes()) / 3, len(buf.Bytes()) - 2} {
			bad := append([]byte{}, buf.Bytes()...)
			bad[off] ^= 0x20
			f.Add(bad)
		}
	}
	seedSnapshot(false, Config{BucketsPerTable: 16, Seed: 4, StashEnabled: true}, 20, false)
	seedSnapshot(false, Config{BucketsPerTable: 16, Seed: 5, StashEnabled: true,
		Deletion: Tombstone}, 30, true)
	seedSnapshot(false, Config{BucketsPerTable: 16, Seed: 6, StashEnabled: true,
		Policy: kv.MinCounter, MaxLoop: 15,
		AutoGrow: AutoGrowPolicy{Enabled: true, StashThreshold: 2}}, 40, false)
	seedSnapshot(true, Config{BucketsPerTable: 8, Seed: 7, StashEnabled: true}, 25, false)
	seedSnapshot(true, Config{BucketsPerTable: 8, Seed: 8, StashEnabled: true,
		Deletion: Tombstone}, 25, true)
	f.Add([]byte{})
	f.Add([]byte("MCCK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := Load(bytes.NewReader(data)); err == nil {
			// Accepted: must be fully operational.
			got.Insert(999, 999)
			if _, ok := got.Lookup(999); !ok {
				t.Fatal("loaded table lost an insert")
			}
		}
		if got, err := LoadBlocked(bytes.NewReader(data)); err == nil {
			got.Insert(999, 999)
			if _, ok := got.Lookup(999); !ok {
				t.Fatal("loaded blocked table lost an insert")
			}
		}
	})
}
