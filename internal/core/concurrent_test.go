package core

import (
	"sync"
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// TestReadOnlyLookupAgreesWithLookup drives both lookup paths over the same
// table states, including deletions and stash pressure, and requires
// identical answers.
func TestReadOnlyLookupAgreesWithLookup(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 256, Seed: 41, StashEnabled: true,
		MaxLoop: 50})
	s := uint64(42)
	for i := 0; i < 5000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % 900
		switch (r >> 32) % 5 {
		case 0, 1, 2:
			tab.Insert(key, r)
		case 3:
			tab.Delete(key)
		case 4:
			v1, ok1 := tab.LookupReadOnly(key)
			v2, ok2 := tab.Lookup(key)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("op %d: read-only (%d,%v) vs lookup (%d,%v)", i, v1, ok1, v2, ok2)
			}
		}
	}
}

func TestBlockedReadOnlyLookupAgrees(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 96, Seed: 43, StashEnabled: true,
		MaxLoop: 50})
	s := uint64(44)
	for i := 0; i < 6000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % 800
		switch (r >> 32) % 5 {
		case 0, 1, 2:
			tab.Insert(key, r)
		case 3:
			tab.Delete(key)
		case 4:
			v1, ok1 := tab.LookupReadOnly(key)
			v2, ok2 := tab.Lookup(key)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("op %d: read-only (%d,%v) vs lookup (%d,%v)", i, v1, ok1, v2, ok2)
			}
		}
	}
}

// TestConcurrentReadersOneWriter exercises the §III.H mode under the race
// detector: one writer mutating, many readers looking up.
func TestConcurrentReadersOneWriter(t *testing.T) {
	inner := mustNew(t, Config{BucketsPerTable: 1024, Seed: 45, StashEnabled: true})
	c := NewConcurrent(inner)
	keys := fillKeys(46, 2000)
	// Pre-load half so readers have hits from the start.
	for _, k := range keys[:1000] {
		c.Insert(k, k+1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := hashutil.Mix64(uint64(r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[hashutil.SplitMix64(&s)%uint64(len(keys))]
				if v, ok := c.Lookup(k); ok && v != k+1 {
					t.Errorf("reader %d: wrong value %d for key %#x", r, v, k)
					return
				}
			}
		}(r)
	}
	for _, k := range keys[1000:] {
		c.Insert(k, k+1)
	}
	for _, k := range keys[:300] {
		c.Delete(k)
	}
	close(stop)
	wg.Wait()

	if c.Len() != 1700 {
		t.Fatalf("Len = %d, want 1700", c.Len())
	}
	for _, k := range keys[300:] {
		if v, ok := c.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost after concurrent phase", k)
		}
	}
	if got := c.Stats(); got.Lookups == 0 {
		t.Fatal("concurrent lookups not counted")
	}
}

// TestConcurrentInterleavedStress drives several writers (Insert/Delete
// serialize under the write lock, so multiple writer goroutines are within
// the wrapper's contract) against a pack of readers, then checks the table
// after quiescence: exact population, exact per-key content, and the full
// structural invariants of the inner table.
//
// Writers own disjoint key ranges, so each writer's per-key op sequence is
// deterministic regardless of interleaving: keys ≡ 0 (mod 3) are inserted,
// deleted, and reinserted with a new value; keys ≡ 1 (mod 3) are inserted
// and deleted; keys ≡ 2 (mod 3) are inserted once.
func TestConcurrentInterleavedStress(t *testing.T) {
	inner := mustNew(t, Config{BucketsPerTable: 2048, Seed: 51, StashEnabled: true})
	c := NewConcurrent(inner)

	const writers, perWriter = 4, 1500
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			s := hashutil.Mix64(uint64(100 + r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := hashutil.SplitMix64(&s) % (writers * perWriter)
				if v, ok := c.Lookup(k); ok && v != k+1 && v != k+2 {
					t.Errorf("reader %d: impossible value %d for key %#x", r, v, k)
					return
				}
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := uint64(w * perWriter)
			for i := uint64(0); i < perWriter; i++ {
				k := base + i
				if c.Insert(k, k+1).Status == kv.Failed {
					t.Errorf("writer %d: insert %#x failed", w, k)
					return
				}
				switch k % 3 {
				case 0:
					c.Delete(k)
					c.Insert(k, k+2)
				case 1:
					c.Delete(k)
				}
				if i%64 == 0 {
					// Writers read too: their own settled keys have
					// deterministic answers even mid-run.
					if v, ok := c.Lookup(k); (k%3 == 1) == ok || (ok && k%3 == 0 && v != k+2) {
						t.Errorf("writer %d: key %#x read back (%d,%v)", w, k, v, ok)
						return
					}
				}
			}
		}(w)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		t.Fatalf("concurrent phase failed")
	}

	// Quiescent checks: population, content, structure.
	wantLen := writers * perWriter * 2 / 3 // thirds 0 and 2 survive
	if c.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", c.Len(), wantLen)
	}
	for k := uint64(0); k < writers*perWriter; k++ {
		v, ok := c.Lookup(k)
		switch k % 3 {
		case 0:
			if !ok || v != k+2 {
				t.Fatalf("reinserted key %#x = (%d,%v), want (%d,true)", k, v, ok, k+2)
			}
		case 1:
			if ok {
				t.Fatalf("deleted key %#x still present with value %d", k, v)
			}
		case 2:
			if !ok || v != k+1 {
				t.Fatalf("inserted key %#x = (%d,%v), want (%d,true)", k, v, ok, k+1)
			}
		}
	}
	if err := inner.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after quiescence: %v", err)
	}
}

func TestConcurrentWrapsBlocked(t *testing.T) {
	inner := mustNewBlocked(t, Config{BucketsPerTable: 128, Seed: 47, StashEnabled: true})
	c := NewConcurrent(inner)
	keys := fillKeys(48, 500)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range keys {
			c.Lookup(k)
		}
	}()
	for _, k := range keys {
		if c.Insert(k, k).Status == kv.Failed {
			t.Error("insert failed")
			break
		}
	}
	wg.Wait()
	for _, k := range keys {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("key %#x missing", k)
		}
	}
	if c.LoadRatio() <= 0 || c.Capacity() == 0 || c.StashLen() < 0 {
		t.Fatal("accessor smoke checks failed")
	}
}
