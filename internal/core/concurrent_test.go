package core

import (
	"sync"
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// TestReadOnlyLookupAgreesWithLookup drives both lookup paths over the same
// table states, including deletions and stash pressure, and requires
// identical answers.
func TestReadOnlyLookupAgreesWithLookup(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 256, Seed: 41, StashEnabled: true,
		MaxLoop: 50})
	s := uint64(42)
	for i := 0; i < 5000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % 900
		switch (r >> 32) % 5 {
		case 0, 1, 2:
			tab.Insert(key, r)
		case 3:
			tab.Delete(key)
		case 4:
			v1, ok1 := tab.LookupReadOnly(key)
			v2, ok2 := tab.Lookup(key)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("op %d: read-only (%d,%v) vs lookup (%d,%v)", i, v1, ok1, v2, ok2)
			}
		}
	}
}

func TestBlockedReadOnlyLookupAgrees(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 96, Seed: 43, StashEnabled: true,
		MaxLoop: 50})
	s := uint64(44)
	for i := 0; i < 6000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % 800
		switch (r >> 32) % 5 {
		case 0, 1, 2:
			tab.Insert(key, r)
		case 3:
			tab.Delete(key)
		case 4:
			v1, ok1 := tab.LookupReadOnly(key)
			v2, ok2 := tab.Lookup(key)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("op %d: read-only (%d,%v) vs lookup (%d,%v)", i, v1, ok1, v2, ok2)
			}
		}
	}
}

// TestConcurrentReadersOneWriter exercises the §III.H mode under the race
// detector: one writer mutating, many readers looking up.
func TestConcurrentReadersOneWriter(t *testing.T) {
	inner := mustNew(t, Config{BucketsPerTable: 1024, Seed: 45, StashEnabled: true})
	c := NewConcurrent(inner)
	keys := fillKeys(46, 2000)
	// Pre-load half so readers have hits from the start.
	for _, k := range keys[:1000] {
		c.Insert(k, k+1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := hashutil.Mix64(uint64(r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[hashutil.SplitMix64(&s)%uint64(len(keys))]
				if v, ok := c.Lookup(k); ok && v != k+1 {
					t.Errorf("reader %d: wrong value %d for key %#x", r, v, k)
					return
				}
			}
		}(r)
	}
	for _, k := range keys[1000:] {
		c.Insert(k, k+1)
	}
	for _, k := range keys[:300] {
		c.Delete(k)
	}
	close(stop)
	wg.Wait()

	if c.Len() != 1700 {
		t.Fatalf("Len = %d, want 1700", c.Len())
	}
	for _, k := range keys[300:] {
		if v, ok := c.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost after concurrent phase", k)
		}
	}
	if got := c.Stats(); got.Lookups == 0 {
		t.Fatal("concurrent lookups not counted")
	}
}

func TestConcurrentWrapsBlocked(t *testing.T) {
	inner := mustNewBlocked(t, Config{BucketsPerTable: 128, Seed: 47, StashEnabled: true})
	c := NewConcurrent(inner)
	keys := fillKeys(48, 500)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range keys {
			c.Lookup(k)
		}
	}()
	for _, k := range keys {
		if c.Insert(k, k).Status == kv.Failed {
			t.Error("insert failed")
			break
		}
	}
	wg.Wait()
	for _, k := range keys {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("key %#x missing", k)
		}
	}
	if c.LoadRatio() <= 0 || c.Capacity() == 0 || c.StashLen() < 0 {
		t.Fatal("accessor smoke checks failed")
	}
}
