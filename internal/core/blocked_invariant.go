package core

import (
	"fmt"

	"mccuckoo/internal/hashutil"
)

// CheckInvariants exhaustively validates the blocked table. Test support;
// charges no memory traffic.
//
// Beyond the single-slot properties (counter consistency, copies only in
// candidate buckets, size/copiesTotal bookkeeping, no live key in the
// stash), it verifies that every live slot's hint vector points exactly at
// the item's live copies: hints[j] names a slot in subtable j holding the
// same key with the same counter, hints for absent copies are noSlot, and
// the item's own entry names its own slot.
func (t *BlockedTable) CheckInvariants() error {
	d, n, l := t.cfg.D, t.cfg.BucketsPerTable, t.cfg.Slots
	type info struct {
		copies int
		cnt    uint64
	}
	items := make(map[uint64]*info)
	liveCopies := 0

	for table := 0; table < d; table++ {
		for bucket := 0; bucket < n; bucket++ {
			for slot := 0; slot < l; slot++ {
				idx := t.slotIndex(table, bucket, slot)
				c := t.counters.Get(idx)
				if t.isFree(c) {
					continue
				}
				if c > uint64(d) {
					return fmt.Errorf("slot (%d,%d,%d): counter %d exceeds d=%d", table, bucket, slot, c, d)
				}
				key := t.keys[idx]
				var cand [hashutil.MaxD]int
				t.family.Indexes(key, cand[:])
				if cand[table] != bucket {
					return fmt.Errorf("slot (%d,%d,%d): key %#x does not hash here", table, bucket, slot, key)
				}
				hints := t.hints[idx]
				if hints[table] != int8(slot) {
					return fmt.Errorf("slot (%d,%d,%d): own hint %d, want %d", table, bucket, slot, hints[table], slot)
				}
				hinted := 0
				for j := 0; j < d; j++ {
					if hints[j] == noSlot {
						continue
					}
					hinted++
					jidx := t.slotIndex(j, cand[j], int(hints[j]))
					if t.keys[jidx] != key {
						return fmt.Errorf("slot (%d,%d,%d): hint[%d]=%d points at key %#x, not %#x",
							table, bucket, slot, j, hints[j], t.keys[jidx], key)
					}
					if jc := t.counters.Get(jidx); jc != c {
						return fmt.Errorf("key %#x: hinted copy at table %d has counter %d, want %d", key, j, jc, c)
					}
				}
				if uint64(hinted) != c {
					return fmt.Errorf("slot (%d,%d,%d): key %#x counter %d but %d hinted copies",
						table, bucket, slot, key, c, hinted)
				}
				liveCopies++
				it := items[key]
				if it == nil {
					items[key] = &info{copies: 1, cnt: c}
					continue
				}
				if it.cnt != c {
					return fmt.Errorf("key %#x: copies disagree on counter (%d vs %d)", key, it.cnt, c)
				}
				it.copies++
			}
		}
	}
	for key, it := range items {
		if uint64(it.copies) != it.cnt {
			return fmt.Errorf("key %#x: %d live copies but counter says %d", key, it.copies, it.cnt)
		}
	}
	// Before any deletion, no inserted item can have a candidate bucket
	// whose slots are all empty (insertion takes one slot in every such
	// bucket), which is what the blocked rule-1 shortcut relies on.
	if !t.deletedAny {
		var cand [hashutil.MaxD]int
		for key := range items {
			t.family.Indexes(key, cand[:])
			for j := 0; j < d; j++ {
				empty := true
				base := t.slotIndex(j, cand[j], 0)
				for s := 0; s < l; s++ {
					if t.counters.Get(base+s) != 0 {
						empty = false
						break
					}
				}
				if empty {
					return fmt.Errorf("key %#x has an all-empty candidate bucket in table %d before any deletion", key, j)
				}
			}
		}
	}
	if len(items) != t.size {
		return fmt.Errorf("size = %d but %d distinct live keys found", t.size, len(items))
	}
	if liveCopies != t.copiesTotal {
		return fmt.Errorf("copiesTotal = %d but %d live copies found", t.copiesTotal, liveCopies)
	}
	if t.overflow != nil {
		for _, e := range t.overflow.Entries() {
			if _, dup := items[e.Key]; dup {
				return fmt.Errorf("key %#x is both live and stashed", e.Key)
			}
		}
	}
	return nil
}

// CopyCount returns how many live copies of key the main table holds.
// Test support; charges no memory traffic.
func (t *BlockedTable) CopyCount(key uint64) int {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	copies := 0
	for i := 0; i < t.cfg.D; i++ {
		base := t.slotIndex(i, cand[i], 0)
		for s := 0; s < t.cfg.Slots; s++ {
			if !t.isFree(t.counters.Get(base+s)) && t.keys[base+s] == key {
				copies++
			}
		}
	}
	return copies
}
