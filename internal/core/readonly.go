package core

import "mccuckoo/internal/hashutil"

// LookupReadOnly answers a lookup without mutating any table state — no
// meter charges, no stats. It applies exactly the same principles as Lookup
// and exists so that many readers can run in parallel under a read lock
// (see Concurrent). Property tests assert it always agrees with Lookup.
func (t *Table) LookupReadOnly(key uint64) (uint64, bool) {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	d := t.cfg.D

	var cnt [hashutil.MaxD]uint64
	anyZero := false
	for i := 0; i < d; i++ {
		cnt[i] = t.counters.Get(t.bucketIndex(i, cand[i]))
		if cnt[i] == 0 {
			anyZero = true
		}
	}
	if anyZero && t.rule1Active() {
		return 0, false
	}
	flagAnd := true
	for v := uint64(d); v >= 1; v-- {
		var group [hashutil.MaxD]int
		s := 0
		for i := 0; i < d; i++ {
			if cnt[i] == v {
				group[s] = i
				s++
			}
		}
		if s == 0 || s < int(v) {
			continue
		}
		budget := s - int(v) + 1
		for k := 0; k < s && budget > 0; k++ {
			i := group[k]
			budget--
			idx := t.bucketIndex(i, cand[i])
			flagAnd = flagAnd && t.flags.Get(idx)
			if t.keys[idx] == key {
				return t.vals[idx], true
			}
		}
	}
	if t.overflow == nil || t.overflow.Len() == 0 {
		return 0, false
	}
	probe := false
	if !t.deletedAny {
		probe = flagAnd
		for i := 0; i < d; i++ {
			if cnt[i] != 1 {
				probe = false
			}
		}
	} else {
		probe = flagAnd
	}
	if probe {
		if v, ok := t.overflow.Peek(key); ok {
			return v, ok
		}
	}
	return 0, false
}

// LookupReadOnly is the blocked-table counterpart of Table.LookupReadOnly.
func (t *BlockedTable) LookupReadOnly(key uint64) (uint64, bool) {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	d, l := t.cfg.D, t.cfg.Slots

	flagAnd := true
	for i := 0; i < d; i++ {
		base := t.slotIndex(i, cand[i], 0)
		live := false
		allZero := true
		var cnt [8]uint64
		for s := 0; s < l; s++ {
			cnt[s] = t.counters.Get(base + s)
			if !t.isFree(cnt[s]) {
				live = true
			}
			if cnt[s] != 0 {
				allZero = false
			}
		}
		if !live {
			if allZero && t.rule1Active() {
				return 0, false
			}
			continue
		}
		flagAnd = flagAnd && t.flags.Get(t.bucketFlagIndex(i, cand[i]))
		for s := 0; s < l; s++ {
			if !t.isFree(cnt[s]) && t.keys[base+s] == key {
				return t.vals[base+s], true
			}
		}
	}
	if t.overflow == nil || t.overflow.Len() == 0 || !flagAnd {
		return 0, false
	}
	return t.overflow.Peek(key)
}
