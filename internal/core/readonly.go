package core

import "mccuckoo/internal/hashutil"

// LookupReadOnly answers a lookup without mutating any table state — no
// meter charges, no stats. It applies exactly the same principles as Lookup
// and exists so that many readers can run in parallel under a read lock
// (see Concurrent). Property tests assert it always agrees with Lookup.
func (t *Table) LookupReadOnly(key uint64) (uint64, bool) {
	v, ok, _ := t.LookupReadOnlyTraced(key)
	return v, ok
}

// LookupReadOnlyTraced is LookupReadOnly additionally reporting the off-chip
// reads the lookup would have charged to the meter (bucket reads plus stash
// group probes). The count feeds the telemetry off-chip-accesses-per-lookup
// histograms from the concurrent read path, where the shared meter cannot be
// touched; it matches what Lookup charges for the same table state.
func (t *Table) LookupReadOnlyTraced(key uint64) (value uint64, ok bool, offReads int64) {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	d := t.cfg.D

	var cnt [hashutil.MaxD]uint64
	anyZero := false
	for i := 0; i < d; i++ {
		cnt[i] = t.counters.Get(t.bucketIndex(i, cand[i]))
		if cnt[i] == 0 {
			anyZero = true
		}
	}
	if anyZero && t.rule1Active() {
		return 0, false, 0
	}
	flagAnd := true
	for v := uint64(d); v >= 1; v-- {
		var group [hashutil.MaxD]int
		s := 0
		for i := 0; i < d; i++ {
			if cnt[i] == v {
				group[s] = i
				s++
			}
		}
		if s == 0 || s < int(v) {
			continue
		}
		budget := s - int(v) + 1
		for k := 0; k < s && budget > 0; k++ {
			i := group[k]
			budget--
			idx := t.bucketIndex(i, cand[i])
			offReads++
			flagAnd = flagAnd && t.flags.Get(idx)
			if t.cells[idx].Key == key {
				return t.cells[idx].Value, true, offReads
			}
		}
	}
	if t.overflow == nil || t.overflow.Len() == 0 {
		return 0, false, offReads
	}
	probe := false
	if !t.deletedAny {
		probe = flagAnd
		for i := 0; i < d; i++ {
			if cnt[i] != 1 {
				probe = false
			}
		}
	} else {
		probe = flagAnd
	}
	if probe {
		v, ok, stashReads := t.overflow.PeekTraced(key)
		offReads += stashReads
		if ok {
			return v, ok, offReads
		}
	}
	return 0, false, offReads
}

// LookupReadOnly is the blocked-table counterpart of Table.LookupReadOnly.
func (t *BlockedTable) LookupReadOnly(key uint64) (uint64, bool) {
	v, ok, _ := t.LookupReadOnlyTraced(key)
	return v, ok
}

// LookupReadOnlyTraced is the blocked-table counterpart of
// Table.LookupReadOnlyTraced: a whole bucket (all l slots) is one off-chip
// read, as in the paper's access model.
func (t *BlockedTable) LookupReadOnlyTraced(key uint64) (value uint64, ok bool, offReads int64) {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	d, l := t.cfg.D, t.cfg.Slots

	flagAnd := true
	for i := 0; i < d; i++ {
		base := t.slotIndex(i, cand[i], 0)
		live := false
		allZero := true
		var cnt [8]uint64
		for s := 0; s < l; s++ {
			cnt[s] = t.counters.Get(base + s)
			if !t.isFree(cnt[s]) {
				live = true
			}
			if cnt[s] != 0 {
				allZero = false
			}
		}
		if !live {
			if allZero && t.rule1Active() {
				return 0, false, offReads
			}
			continue
		}
		offReads++
		flagAnd = flagAnd && t.flags.Get(t.bucketFlagIndex(i, cand[i]))
		for s := 0; s < l; s++ {
			if !t.isFree(cnt[s]) && t.keys[base+s] == key {
				return t.vals[base+s], true, offReads
			}
		}
	}
	if t.overflow == nil || t.overflow.Len() == 0 || !flagAnd {
		return 0, false, offReads
	}
	v, ok, stashReads := t.overflow.PeekTraced(key)
	return v, ok, offReads + stashReads
}
