package core

// Stash-flag density: the fraction of off-chip buckets whose stash flag is
// set. The flags pre-screen stash probes (§III.E), so their density is the
// false-positive pressure on negative lookups once the stash is in play — a
// density creeping toward 1 means lookups are paying the stash tax again.
// This is the single source of truth for the telemetry gauge; the sharded
// table aggregates the raw counts so the density stays a true fraction.

// StashFlags returns the number of set stash-flag bits and the total number
// of flag bits (one per bucket).
func (t *Table) StashFlags() (set, total int) {
	return t.flags.Count(), t.flags.Len()
}

// StashFlagDensity returns set/total stash-flag bits, 0 for an empty flag
// array.
func (t *Table) StashFlagDensity() float64 {
	set, total := t.StashFlags()
	if total == 0 {
		return 0
	}
	return float64(set) / float64(total)
}

// StashFlags returns the blocked table's set and total stash-flag bits (one
// flag per bucket of l slots).
func (t *BlockedTable) StashFlags() (set, total int) {
	return t.flags.Count(), t.flags.Len()
}

// StashFlagDensity returns set/total stash-flag bits, 0 for an empty flag
// array.
func (t *BlockedTable) StashFlagDensity() float64 {
	set, total := t.StashFlags()
	if total == 0 {
		return 0
	}
	return float64(set) / float64(total)
}
