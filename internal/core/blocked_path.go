package core

import (
	"fmt"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// BlockedPathMove is one hop of a blocked-table cuckoo path: the item in
// (FromTable, FromBucket, FromSlot) gains a copy in slot ToSlot of its
// candidate bucket in ToTable.
type BlockedPathMove struct {
	Key        uint64
	FromTable  int
	FromBucket int
	FromSlot   int
	ToTable    int
	ToBucket   int
	ToSlot     int
}

// FindPath searches for a cuckoo path at slot granularity without mutating
// the table, mirroring Table.FindPath. Paths are bucket-disjoint. ok is
// false when no path within MaxLoop hops exists.
func (t *BlockedTable) FindPath(key uint64) ([]BlockedPathMove, bool) {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	path := make([]BlockedPathMove, 0, 8)
	curTable := t.rng.IntN(t.cfg.D)
	curBucket := cand[curTable]
	curSlot := t.rng.IntN(t.cfg.Slots)
	visited := map[int]bool{t.bucketFlagIndex(curTable, curBucket): true}
	var cnt [8]uint64
	for hop := 0; hop < t.cfg.MaxLoop; hop++ {
		t.readBucketAccess(curTable, curBucket)
		victim := t.keys[t.slotIndex(curTable, curBucket, curSlot)]
		var vcand [hashutil.MaxD]int
		t.family.Indexes(victim, vcand[:])

		// A usable destination is any slot with counter != 1 in one of
		// the victim's other, unvisited candidate buckets.
		for j := 0; j < t.cfg.D; j++ {
			if j == curTable || visited[t.bucketFlagIndex(j, vcand[j])] {
				continue
			}
			t.bucketCounters(j, vcand[j], cnt[:t.cfg.Slots])
			for s := 0; s < t.cfg.Slots; s++ {
				if cnt[s] != 1 {
					path = append(path, BlockedPathMove{
						Key:       victim,
						FromTable: curTable, FromBucket: curBucket, FromSlot: curSlot,
						ToTable: j, ToBucket: vcand[j], ToSlot: s,
					})
					return path, true
				}
			}
		}
		// Extend through a random unvisited candidate bucket and slot.
		var opts [hashutil.MaxD]int
		nOpts := 0
		for j := 0; j < t.cfg.D; j++ {
			if j != curTable && !visited[t.bucketFlagIndex(j, vcand[j])] {
				opts[nOpts] = j
				nOpts++
			}
		}
		if nOpts == 0 {
			return nil, false
		}
		next := opts[t.rng.IntN(nOpts)]
		nextSlot := t.rng.IntN(t.cfg.Slots)
		path = append(path, BlockedPathMove{
			Key:       victim,
			FromTable: curTable, FromBucket: curBucket, FromSlot: curSlot,
			ToTable: next, ToBucket: vcand[next], ToSlot: nextSlot,
		})
		curTable, curBucket, curSlot = next, vcand[next], nextSlot
		visited[t.bucketFlagIndex(curTable, curBucket)] = true
	}
	return nil, false
}

// ApplyMove executes one blocked path hop (last hop first). The moved item
// briefly holds two mutually hinted copies — a state the blocked table
// represents natively, so invariants hold between moves.
func (t *BlockedTable) ApplyMove(m BlockedPathMove) error {
	destIdx := t.slotIndex(m.ToTable, m.ToBucket, m.ToSlot)
	destCnt := t.counters.Get(destIdx)
	t.meter.ReadOn(1)
	switch {
	case t.isFree(destCnt):
	case destCnt >= 2:
		t.overwriteVictim(m.ToTable, m.ToBucket, m.ToSlot, destCnt)
	default:
		return fmt.Errorf("core: blocked path destination (%d,%d,%d) holds a sole copy",
			m.ToTable, m.ToBucket, m.ToSlot)
	}
	srcIdx := t.slotIndex(m.FromTable, m.FromBucket, m.FromSlot)
	if t.keys[srcIdx] != m.Key {
		return fmt.Errorf("core: blocked path source changed: want key %#x, found %#x", m.Key, t.keys[srcIdx])
	}
	if c := t.counters.Get(srcIdx); c != 1 {
		return fmt.Errorf("core: blocked path mover %#x had counter %d, want 1", m.Key, c)
	}
	// Write the new copy with mutual hints and refresh the source's hints
	// to point at its sibling.
	var hints [4]int8
	for i := range hints {
		hints[i] = noSlot
	}
	hints[m.FromTable] = int8(m.FromSlot)
	hints[m.ToTable] = int8(m.ToSlot)
	t.writeSlot(destIdx, kv.Entry{Key: m.Key, Value: t.vals[srcIdx]}, hints)
	t.hints[srcIdx] = hints
	t.meter.WriteOff(1) // hint fix-up write on the source record
	t.setSlotCounter(m.FromTable, m.FromBucket, m.FromSlot, 2)
	t.setSlotCounter(m.ToTable, m.ToBucket, m.ToSlot, 2)
	t.copiesTotal++
	t.redundantWrites++
	return nil
}

// TryPlace attempts principle-based placement of key/value; done is false
// exactly on a real collision. First stage of the pathwise protocol.
func (t *BlockedTable) TryPlace(key, value uint64) (out kv.Outcome, done bool) {
	t.stats.Inserts++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	if !t.cfg.AssumeUniqueKeys {
		if out, handled := t.updateExisting(key, value, cand[:t.cfg.D]); handled {
			return out, true
		}
	}
	if copies := t.place(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D]); copies > 0 {
		t.size++
		return kv.Outcome{Status: kv.Placed}, true
	}
	return kv.Outcome{}, false
}

// StashOverflow sends key/value to the stash after a failed path search.
func (t *BlockedTable) StashOverflow(key, value uint64) kv.Outcome {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	return t.overflowInsert(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D], 0)
}

// FinishPath installs key/value into the slot the path head vacated (which
// now holds a redundant copy of the head's item).
func (t *BlockedTable) FinishPath(key, value uint64, head BlockedPathMove, pathLen int) kv.Outcome {
	t.overwriteVictim(head.FromTable, head.FromBucket, head.FromSlot, 2)
	var hints [4]int8
	for i := range hints {
		hints[i] = noSlot
	}
	hints[head.FromTable] = int8(head.FromSlot)
	t.writeSlot(t.slotIndex(head.FromTable, head.FromBucket, head.FromSlot),
		kv.Entry{Key: key, Value: value}, hints)
	t.setSlotCounter(head.FromTable, head.FromBucket, head.FromSlot, 1)
	t.copiesTotal++
	t.size++
	t.stats.Kicks += int64(pathLen)
	return kv.Outcome{Status: kv.Placed, Kicks: pathLen}
}

// InsertPathwise inserts via two-phase path execution, exactly as
// Table.InsertPathwise.
func (t *BlockedTable) InsertPathwise(key, value uint64) kv.Outcome {
	if out, done := t.TryPlace(key, value); done {
		return out
	}
	path, ok := t.FindPath(key)
	if !ok {
		return t.StashOverflow(key, value)
	}
	for i := len(path) - 1; i >= 0; i-- {
		if err := t.ApplyMove(path[i]); err != nil {
			panic(err)
		}
	}
	return t.FinishPath(key, value, path[0], len(path))
}
