package core

import (
	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/hashutil"
)

// Repair rebuilds all derived state from the authoritative off-chip content.
//
// McCuckoo's design splits the table into authoritative off-chip state (the
// bucket keys/values, the blocked tables' slot hints, and the stash) and
// derived on-chip state (the copy counters, the stash flags, and the
// size/copiesTotal bookkeeping). The derived state is exactly what a power
// loss or SRAM fault wipes — and, because deletion is an on-chip-only
// operation (§III.B.3), it is also the only record that a deletion ever
// happened. Repair is the recovery story for that split: a full off-chip
// scan that reconstitutes counters, flags, hints, and bookkeeping, clearing
// anything the buckets cannot corroborate.
//
// Liveness rule. A key K found in its own candidate bucket is live iff
// either (a) at least one of its candidate copies still has a non-free
// counter — corroborating evidence that some of the on-chip record survived
// — or (b) the table has never processed a deletion and K != 0, in which
// case stale bucket content cannot exist and every stored key is live (K = 0
// is excluded because an all-zero bucket is indistinguishable from a
// never-written one; key 0 survives repair only through counter evidence).
//
// Consequences, documented rather than hidden:
//
//   - Deletions may roll back. A deletion writes nothing off-chip, so if
//     every counter of a deleted key is simultaneously lost AND corrupted
//     back to non-free, Repair resurrects the key with its pre-deletion
//     value. Conversely a key whose every copy counter was zeroed on a
//     table that has deleted is indistinguishable from a deleted key and
//     stays dead.
//   - Aliens are cleared. A bucket whose stored key does not hash there
//     (off-chip corruption) cannot be a copy of anything; its counter is
//     zeroed and the item survives through its sibling copies — the
//     multi-copy redundancy doubling as fault tolerance.
//   - Stash flags are resynchronized to the stash's current content,
//     subsuming stale Bloom bits left by stash deletions.
//   - In Tombstone mode every non-live slot still holding a key is re-marked
//     with the tombstone value: after on-chip loss it is unknowable which
//     dead slots carried deletion marks, and under-marking would let the
//     rule-1 lookup shortcut miss live keys whose candidate buckets filled
//     up and later emptied.
//
// Repair charges the meter like the rebuild it is: one off-chip read per
// bucket scanned, one on-chip write per counter changed, one off-chip write
// per flag, hint, or value fixed. Two repairs of the same damaged state must
// converge to the same table, so the rebuild may not depend on clocks,
// randomness, or iteration order.
//
//mcvet:setter counters
//mcvet:deterministic
func (t *Table) Repair() RepairReport {
	d, n := t.cfg.D, t.cfg.BucketsPerTable
	rep := RepairReport{SizeBefore: t.size, CopiesBefore: t.copiesTotal}
	t.meter.ReadOff(int64(d * n))

	// Pass 1: group valid-position bucket content by key, noting which
	// copies the surviving counters corroborate.
	type keyState struct {
		tables   []int8 // subtables whose candidate bucket stores the key
		evidence bool   // any of them has a non-free counter
	}
	found := make(map[uint64]*keyState, t.size)
	for j := 0; j < d; j++ {
		for b := 0; b < n; b++ {
			idx := t.bucketIndex(j, b)
			key := t.cells[idx].Key
			c := t.counters.Get(idx)
			if t.family.Index(j, key) != b {
				if !t.isFree(c) {
					rep.AliensCleared++
				}
				continue
			}
			if key == 0 && t.isFree(c) {
				continue // indistinguishable from a never-written bucket
			}
			ks := found[key]
			if ks == nil {
				ks = &keyState{}
				found[key] = ks
			}
			ks.tables = append(ks.tables, int8(j))
			if !t.isFree(c) {
				ks.evidence = true
			}
		}
	}

	// Pass 2: rebuild counters for every live key; repair divergent values
	// from an evidenced copy.
	newCounters, err := bitpack.NewCounters(d*n, t.cfg.counterWidth())
	if err != nil {
		panic(err) // geometry already validated at construction
	}
	live := make(map[uint64]struct{}, len(found))
	newSize, newCopies := 0, 0
	var cand [hashutil.MaxD]int
	// Each key rebuilds only its own candidate slots, which are disjoint
	// across keys, so the per-key work commutes and the final state is
	// iteration-order independent.
	//mcvet:allow nodeterminism per-key rebuild touches disjoint slots; order-independent
	for key, ks := range found {
		if !ks.evidence && (t.deletedAny || key == 0) {
			continue // stale (or unknowable) content stays dead
		}
		t.family.Indexes(key, cand[:])
		// Value consensus: majority vote over all copies, evidenced copies
		// breaking ties — so a single corrupted value among three copies is
		// outvoted, not propagated.
		val := t.cells[t.bucketIndex(int(ks.tables[0]), cand[ks.tables[0]])].Value
		if len(ks.tables) > 1 {
			votes := make(map[uint64]int, len(ks.tables))
			best := -1
			for _, j := range ks.tables {
				cv := t.cells[t.bucketIndex(int(j), cand[j])].Value
				w := 2
				if !t.isFree(t.counters.Get(t.bucketIndex(int(j), cand[j]))) {
					w = 3 // evidenced copies outrank equally-split others
				}
				votes[cv] += w
				if votes[cv] > best {
					best = votes[cv]
					val = cv
				}
			}
		}
		copies := len(ks.tables)
		for _, j := range ks.tables {
			idx := t.bucketIndex(int(j), cand[j])
			newCounters.Set(idx, uint64(copies))
			if t.cells[idx].Value != val {
				t.cells[idx].Value = val
				t.meter.WriteOff(1)
				rep.ValuesFixed++
			}
		}
		live[key] = struct{}{}
		newSize++
		newCopies += copies
	}

	// In Tombstone mode, re-mark every dead slot that still holds a key:
	// conservative deletion marks keep the rule-1 shortcut sound (see the
	// function comment).
	if t.tombstoneVal != 0 {
		for idx := range t.cells {
			if t.cells[idx].Key != 0 && newCounters.Get(idx) == 0 {
				newCounters.Set(idx, t.tombstoneVal)
			}
		}
	}

	rep.CountersFixed = installCounters(t.counters, newCounters, &t.meter)
	t.counters = newCounters
	rep.FlagsFixed, rep.StashDropped = t.rebuildStashState(live, cand[:])
	t.size, t.copiesTotal = newSize, newCopies
	rep.SizeAfter, rep.CopiesAfter = newSize, newCopies
	if rep.AliensCleared > 0 {
		// Clearing an alien frees a bucket a live key may have had a copy
		// in — the same hole a deletion leaves, so the never-deleted
		// shortcuts no longer hold.
		t.deletedAny = true
	}
	return rep
}

// rebuildStashState drops stash entries shadowed by a live main-table copy
// and resynchronizes the per-bucket stash flags to the surviving entries.
//
//mcvet:setter flags
func (t *Table) rebuildStashState(live map[uint64]struct{}, cand []int) (flagsFixed, stashDropped int) {
	newFlags, err := bitpack.NewBitset(t.flags.Len())
	if err != nil {
		panic(err)
	}
	if t.overflow != nil {
		for _, e := range t.overflow.Entries() {
			if _, dup := live[e.Key]; dup {
				t.overflow.Delete(e.Key)
				stashDropped++
				continue
			}
			t.family.Indexes(e.Key, cand)
			for j := 0; j < t.cfg.D; j++ {
				newFlags.Set(t.bucketIndex(j, cand[j]))
			}
		}
	}
	flagsFixed = installFlags(t.flags, newFlags, &t.meter)
	t.flags = newFlags
	return flagsFixed, stashDropped
}

// Repair rebuilds the blocked table's derived state from the off-chip slots,
// hints, and stash, with the same liveness rule and documented semantics as
// Table.Repair.
//
// The blocked layout adds one ambiguity the single-slot table cannot have: a
// candidate bucket may hold both a live copy of a key and a stale one (a
// reinsertion after deletion may land in a different slot of the same
// bucket). Per subtable the copy is resolved in order of trust: a single
// counter-corroborated slot wins outright; among several, the hint vectors
// of the key's corroborated copies in other subtables vote (hints are stored
// off-chip with the items and survive on-chip loss); with no corroboration
// at all, the hint vote alone decides, except on a never-deleted table where
// stale slots cannot exist and the stored slot is taken as-is. Hint vectors
// of all chosen copies are then rewritten to point exactly at each other.
//
//mcvet:setter counters
//mcvet:deterministic
func (t *BlockedTable) Repair() RepairReport {
	d, n, l := t.cfg.D, t.cfg.BucketsPerTable, t.cfg.Slots
	rep := RepairReport{SizeBefore: t.size, CopiesBefore: t.copiesTotal}
	t.meter.ReadOff(int64(d * n))

	type keyState struct {
		slots    [hashutil.MaxD][]int8 // candidate-bucket slots holding the key
		evid     [hashutil.MaxD][]int8 // the counter-corroborated subset
		evidence bool
	}
	found := make(map[uint64]*keyState, t.size)
	for j := 0; j < d; j++ {
		for b := 0; b < n; b++ {
			for s := 0; s < l; s++ {
				idx := t.slotIndex(j, b, s)
				key := t.keys[idx]
				c := t.counters.Get(idx)
				if t.family.Index(j, key) != b {
					if !t.isFree(c) {
						rep.AliensCleared++
					}
					continue
				}
				if key == 0 && t.isFree(c) {
					continue
				}
				ks := found[key]
				if ks == nil {
					ks = &keyState{}
					found[key] = ks
				}
				ks.slots[j] = append(ks.slots[j], int8(s))
				if !t.isFree(c) {
					ks.evid[j] = append(ks.evid[j], int8(s))
					ks.evidence = true
				}
			}
		}
	}

	newCounters, err := bitpack.NewCounters(d*n*l, t.cfg.counterWidth())
	if err != nil {
		panic(err)
	}
	live := make(map[uint64]struct{}, len(found))
	newSize, newCopies := 0, 0
	var cand [hashutil.MaxD]int
	// Each key rebuilds only its own candidate slots, which are disjoint
	// across keys, so the per-key work commutes and the final state is
	// iteration-order independent.
	//mcvet:allow nodeterminism per-key rebuild touches disjoint slots; order-independent
	for key, ks := range found {
		if !ks.evidence && (t.deletedAny || key == 0) {
			continue
		}
		t.family.Indexes(key, cand[:])

		// Resolve the copy slot per subtable: evidence, then hint vote,
		// then (never-deleted tables only) the stored slot. Lanes beyond d
		// stay noSlot, matching the stored hint-vector convention.
		sel := [4]int8{noSlot, noSlot, noSlot, noSlot}
		for j := 0; j < d; j++ {
			slots, evid := ks.slots[j], ks.evid[j]
			switch {
			case len(evid) == 1:
				sel[j] = evid[0]
			case len(evid) > 1:
				if v := t.hintVote(ks.evid[:], cand[:], j, evid); v != noSlot {
					sel[j] = v
				} else {
					sel[j] = evid[0]
				}
			case len(slots) == 0:
				// no copy in this subtable
			case !t.deletedAny:
				sel[j] = slots[0] // stale slots cannot exist
			default:
				sel[j] = t.hintVote(ks.evid[:], cand[:], j, slots)
			}
		}
		copies := 0
		for j := 0; j < d; j++ {
			if sel[j] != noSlot {
				copies++
			}
		}
		if copies == 0 {
			continue // hint vote rejected every uncorroborated slot
		}

		// Value consensus: majority vote over the chosen copies, evidenced
		// copies breaking ties — a single corrupted value among three
		// copies is outvoted, not propagated.
		var val uint64
		{
			votes := make(map[uint64]int, copies)
			best := -1
			for j := 0; j < d; j++ {
				if sel[j] == noSlot {
					continue
				}
				idx := t.slotIndex(j, cand[j], int(sel[j]))
				w := 2
				if !t.isFree(t.counters.Get(idx)) {
					w = 3
				}
				votes[t.vals[idx]] += w
				if votes[t.vals[idx]] > best {
					best = votes[t.vals[idx]]
					val = t.vals[idx]
				}
			}
		}
		for j := 0; j < d; j++ {
			if sel[j] == noSlot {
				continue
			}
			idx := t.slotIndex(j, cand[j], int(sel[j]))
			newCounters.Set(idx, uint64(copies))
			if t.vals[idx] != val {
				t.vals[idx] = val
				t.meter.WriteOff(1)
				rep.ValuesFixed++
			}
			want := [4]int8{sel[0], sel[1], sel[2], sel[3]}
			if t.hints[idx] != want {
				t.hints[idx] = want
				t.meter.WriteOff(1)
				rep.HintsFixed++
			}
		}
		live[key] = struct{}{}
		newSize++
		newCopies += copies
	}

	if t.tombstoneVal != 0 {
		for idx := range t.keys {
			if t.keys[idx] != 0 && newCounters.Get(idx) == 0 {
				newCounters.Set(idx, t.tombstoneVal)
			}
		}
	}

	rep.CountersFixed = installCounters(t.counters, newCounters, &t.meter)
	t.counters = newCounters
	rep.FlagsFixed, rep.StashDropped = t.rebuildStashState(live, cand[:])
	t.size, t.copiesTotal = newSize, newCopies
	rep.SizeAfter, rep.CopiesAfter = newSize, newCopies
	if rep.AliensCleared > 0 {
		// As in Table.Repair: a cleared alien leaves the hole a deletion
		// would, so the never-deleted shortcuts no longer hold.
		t.deletedAny = true
	}
	return rep
}

// hintVote tallies, among the key's counter-corroborated copies in subtables
// other than j, what slot their stored hint vectors name for subtable j, and
// returns the majority choice provided it is one of the allowed slots (ties
// break to the lowest slot). noSlot means no usable vote.
func (t *BlockedTable) hintVote(evid [][]int8, cand []int, j int, allowed []int8) int8 {
	var votes [4]int
	any := false
	for k := 0; k < t.cfg.D; k++ {
		if k == j {
			continue
		}
		for _, s := range evid[k] {
			h := t.hints[t.slotIndex(k, cand[k], int(s))][j]
			if h == noSlot {
				continue
			}
			for _, a := range allowed {
				if a == h {
					votes[h]++
					any = true
					break
				}
			}
		}
	}
	if !any {
		return noSlot
	}
	best := noSlot
	for s := len(votes) - 1; s >= 0; s-- {
		if votes[s] > 0 && (best == noSlot || votes[s] >= votes[best]) {
			best = int8(s)
		}
	}
	return best
}

// rebuildStashState is the blocked-table variant: flags are per bucket.
//
//mcvet:setter flags
func (t *BlockedTable) rebuildStashState(live map[uint64]struct{}, cand []int) (flagsFixed, stashDropped int) {
	newFlags, err := bitpack.NewBitset(t.flags.Len())
	if err != nil {
		panic(err)
	}
	if t.overflow != nil {
		for _, e := range t.overflow.Entries() {
			if _, dup := live[e.Key]; dup {
				t.overflow.Delete(e.Key)
				stashDropped++
				continue
			}
			t.family.Indexes(e.Key, cand)
			for j := 0; j < t.cfg.D; j++ {
				newFlags.Set(t.bucketFlagIndex(j, cand[j]))
			}
		}
	}
	flagsFixed = installFlags(t.flags, newFlags, &t.meter)
	t.flags = newFlags
	return flagsFixed, stashDropped
}
