package core

import (
	"sync"
	"sync/atomic"

	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
)

// ReadOnlyLookuper is the read path a table must expose to be wrapped by
// Concurrent. Both Table and BlockedTable implement it.
type ReadOnlyLookuper interface {
	kv.Table
	LookupReadOnly(key uint64) (uint64, bool)
}

// Concurrent provides the one-writer-many-readers access mode of §III.H:
// lookups run in parallel under a shared read lock via the tables' pure
// read-only path, while insertions and deletions serialize under the write
// lock.
//
// The paper suggests MemC3-style optimistic versioned reads; in Go that
// pattern is a data race by the memory model (readers would observe torn
// bucket writes), so the honest equivalent is a reader/writer lock: the same
// concurrency structure — unlimited parallel readers, one writer — with
// defined behaviour. McCuckoo keeps writer critical sections short exactly
// because the counters find short cuckoo paths quickly.
type Concurrent struct {
	mu sync.RWMutex
	// inner is assigned once at construction and never reassigned; the
	// lock guards the wrapped table's mutable state, so every call into
	// inner must hold mu (read lock for the read-only path).
	//
	//mcvet:guardedby mu
	inner ReadOnlyLookuper

	lookups atomic.Int64
	hits    atomic.Int64
}

// NewConcurrent wraps a table for concurrent use. The wrapped table must not
// be used directly afterwards.
func NewConcurrent(inner ReadOnlyLookuper) *Concurrent {
	return &Concurrent{inner: inner}
}

// Insert stores key/value under the write lock.
func (c *Concurrent) Insert(key, value uint64) kv.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Insert(key, value)
}

// InsertPathwise inserts with bounded writer critical sections: the cuckoo
// path is executed one move at a time, releasing the write lock between
// moves so readers interleave even during long relocation chains (the
// MemC3 combination §III.H suggests — McCuckoo's counters find the path,
// and its native multi-copy representation keeps every intermediate state a
// valid table, so readers never lose an item mid-path). Both table kinds
// support pathwise execution. There must be exactly one writer goroutine,
// the same contract as Insert/Delete.
func (c *Concurrent) InsertPathwise(key, value uint64) kv.Outcome {
	// The type switch reads only the interface word, which is immutable
	// after construction; the staged calls take the lock per move.
	switch t := c.inner.(type) { //mcvet:allow lockdiscipline inner is write-once at construction; only its pointee needs mu
	case *Table:
		return pathwiseInsert(c, key, value,
			t.TryPlace, t.FindPath, t.ApplyMove, t.StashOverflow,
			func(head PathMove, n int) kv.Outcome { return t.FinishPath(key, value, head, n) })
	case *BlockedTable:
		return pathwiseInsert(c, key, value,
			t.TryPlace, t.FindPath, t.ApplyMove, t.StashOverflow,
			func(head BlockedPathMove, n int) kv.Outcome { return t.FinishPath(key, value, head, n) })
	default:
		return c.Insert(key, value)
	}
}

// pathwiseInsert runs the staged protocol with the write lock released
// between path moves, for either table kind.
func pathwiseInsert[M any](c *Concurrent, key, value uint64,
	tryPlace func(uint64, uint64) (kv.Outcome, bool),
	findPath func(uint64) ([]M, bool),
	applyMove func(M) error,
	stash func(uint64, uint64) kv.Outcome,
	finish func(M, int) kv.Outcome,
) kv.Outcome {
	c.mu.Lock()
	out, done := tryPlace(key, value)
	if done {
		c.mu.Unlock()
		return out
	}
	// FindPath only reads table state (plus the writer-owned RNG and
	// meter), so holding the write lock is not required for reader
	// safety — but it is cheap to keep it for the discovery too, since
	// discovery does no off-chip writes. Release before executing.
	path, found := findPath(key)
	c.mu.Unlock()
	if !found {
		c.mu.Lock()
		defer c.mu.Unlock()
		return stash(key, value)
	}
	for i := len(path) - 1; i >= 0; i-- {
		c.mu.Lock()
		err := applyMove(path[i])
		c.mu.Unlock()
		if err != nil {
			// Unreachable with a single writer; surface loudly.
			panic(err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return finish(path[0], len(path))
}

// Delete removes key under the write lock.
func (c *Concurrent) Delete(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Delete(key)
}

// Lookup runs under the shared read lock; any number of lookups proceed in
// parallel.
func (c *Concurrent) Lookup(key uint64) (uint64, bool) {
	c.lookups.Add(1)
	c.mu.RLock()
	v, ok := c.inner.LookupReadOnly(key)
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

// Len returns the number of live items.
func (c *Concurrent) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.Len()
}

// Capacity returns the wrapped table's capacity.
func (c *Concurrent) Capacity() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.Capacity()
}

// LoadRatio returns the wrapped table's load ratio.
func (c *Concurrent) LoadRatio() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.LoadRatio()
}

// StashLen returns the wrapped table's stash population.
func (c *Concurrent) StashLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.StashLen()
}

// Meter returns the wrapped table's meter. Only the writer path charges it;
// take the write lock or quiesce writers before reading it.
func (c *Concurrent) Meter() *memmodel.Meter {
	return c.inner.Meter() //mcvet:allow lockdiscipline documented racy accessor; callers must quiesce writers first
}

// Stats merges the writer-side stats with the atomically counted concurrent
// lookups.
func (c *Concurrent) Stats() kv.Stats {
	c.mu.RLock()
	st := c.inner.Stats()
	c.mu.RUnlock()
	st.Lookups += c.lookups.Load()
	st.Hits += c.hits.Load()
	return st
}

var _ kv.Table = (*Concurrent)(nil)
