package core

import (
	"fmt"
	"os"

	"mccuckoo/internal/atomicio"
)

// SaveFile writes a crash-safe snapshot of the table to path: temp file in
// the same directory, fsync, atomic rename. A crash mid-save leaves the
// previous file (or no file) intact, never a torn snapshot.
func (t *Table) SaveFile(path string) error {
	return atomicio.WriteFile(path, func(f *os.File) error {
		_, err := t.WriteTo(f)
		return err
	})
}

// LoadFile loads a single-slot table from a snapshot file written by
// SaveFile. Beyond Load's stream validation it also rejects files with bytes
// after the checksum trailer — a whole file either is a snapshot or is not.
func LoadFile(path string) (*Table, error) {
	var t *Table
	err := loadSnapshotFile(path, "table", func(f *os.File) (int64, error) {
		var n int64
		var err error
		t, n, err = loadTable(f)
		return n, err
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes a crash-safe snapshot of the blocked table to path, with
// the same guarantees as Table.SaveFile.
func (t *BlockedTable) SaveFile(path string) error {
	return atomicio.WriteFile(path, func(f *os.File) error {
		_, err := t.WriteTo(f)
		return err
	})
}

// LoadBlockedFile loads a blocked table from a snapshot file written by
// SaveFile, with the same rejection guarantees as LoadFile.
func LoadBlockedFile(path string) (*BlockedTable, error) {
	var t *BlockedTable
	err := loadSnapshotFile(path, "blocked", func(f *os.File) (int64, error) {
		var n int64
		var err error
		t, n, err = loadBlockedTable(f)
		return n, err
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// loadSnapshotFile opens path, runs the stream loader, and enforces that the
// snapshot accounts for every byte of the file.
func loadSnapshotFile(path, kind string, load func(f *os.File) (int64, error)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open snapshot: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("core: stat snapshot: %w", err)
	}
	n, err := load(f)
	if err != nil {
		return err
	}
	if n != info.Size() {
		return corruptf(kind, "trailer", n, "%d trailing bytes after snapshot end", info.Size()-n)
	}
	return nil
}
