package core

import "mccuckoo/internal/hashutil"

// Range calls fn for every distinct live item (stash included) until fn
// returns false. Each item is reported exactly once even when it has
// multiple copies: a copy is reported only from the lowest-numbered subtable
// holding one, determined with O(d) counter checks and no extra memory.
// Iteration order is unspecified. Range charges no memory traffic; it is a
// maintenance/inspection operation, not part of the paper's workload model.
func (t *Table) Range(fn func(key, value uint64) bool) {
	d, n := t.cfg.D, t.cfg.BucketsPerTable
	var cand [hashutil.MaxD]int
	for table := 0; table < d; table++ {
		for bucket := 0; bucket < n; bucket++ {
			idx := t.bucketIndex(table, bucket)
			c := t.counters.Get(idx)
			if t.isFree(c) {
				continue
			}
			key := t.cells[idx].Key
			if c > 1 {
				// Skip unless this is the first subtable holding
				// a copy of key.
				t.family.Indexes(key, cand[:])
				first := true
				for j := 0; j < table; j++ {
					jidx := t.bucketIndex(j, cand[j])
					if t.counters.Get(jidx) == c && t.cells[jidx].Key == key {
						first = false
						break
					}
				}
				if !first {
					continue
				}
			}
			if !fn(key, t.cells[idx].Value) {
				return
			}
		}
	}
	if t.overflow != nil {
		for _, e := range t.overflow.Entries() {
			if !fn(e.Key, e.Value) {
				return
			}
		}
	}
}

// CopyHistogram returns how many live items currently have 1, 2, ..., d
// copies (index 0 is unused). The redundancy distribution is the quantity
// Theorems 1 and 2 reason about; watching it drain toward all-ones shows a
// table approaching its collision regime.
func (t *Table) CopyHistogram() []int {
	hist := make([]int, t.cfg.D+1)
	seen := make(map[uint64]struct{}, t.size)
	for idx := range t.cells {
		c := t.counters.Get(idx)
		if t.isFree(c) || c > uint64(t.cfg.D) {
			continue
		}
		key := t.cells[idx].Key
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		hist[c]++
	}
	return hist
}

// Range calls fn for every distinct live item of the blocked table, exactly
// as Table.Range. Copies are reported from their lowest (subtable, slot)
// position using the stored slot hints.
func (t *BlockedTable) Range(fn func(key, value uint64) bool) {
	d, n, l := t.cfg.D, t.cfg.BucketsPerTable, t.cfg.Slots
	for table := 0; table < d; table++ {
		for bucket := 0; bucket < n; bucket++ {
			for slot := 0; slot < l; slot++ {
				idx := t.slotIndex(table, bucket, slot)
				c := t.counters.Get(idx)
				if t.isFree(c) {
					continue
				}
				// The hints name every copy's subtable; report
				// only from the lowest one.
				hints := t.hints[idx]
				first := true
				for j := 0; j < table; j++ {
					if hints[j] != noSlot {
						first = false
						break
					}
				}
				if !first {
					continue
				}
				if !fn(t.keys[idx], t.vals[idx]) {
					return
				}
			}
		}
	}
	if t.overflow != nil {
		for _, e := range t.overflow.Entries() {
			if !fn(e.Key, e.Value) {
				return
			}
		}
	}
}

// CopyHistogram returns the redundancy distribution of the blocked table.
func (t *BlockedTable) CopyHistogram() []int {
	hist := make([]int, t.cfg.D+1)
	seen := make(map[uint64]struct{}, t.size)
	for idx := range t.keys {
		c := t.counters.Get(idx)
		if t.isFree(c) || c > uint64(t.cfg.D) {
			continue
		}
		key := t.keys[idx]
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		hist[c]++
	}
	return hist
}
