package core

import (
	"testing"

	"mccuckoo/internal/kv"
)

func TestGrowRecoversAllItems(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 128, Seed: 71, AssumeUniqueKeys: true,
		StashEnabled: true, MaxLoop: 50})
	keys := fillKeys(72, 370) // ~96% load: guarantees stash pressure
	for _, k := range keys {
		tab.Insert(k, k*3)
	}
	stashedBefore := tab.StashLen()
	if err := tab.Grow(2); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if tab.Capacity() != 3*256 {
		t.Fatalf("capacity after grow = %d", tab.Capacity())
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k*3 {
			t.Fatalf("key %#x lost across Grow (ok=%v)", k, ok)
		}
	}
	if tab.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(keys))
	}
	// At half the load, the grown table should have absorbed the stash.
	if stashedBefore > 0 && tab.StashLen() >= stashedBefore {
		t.Errorf("stash did not shrink across Grow: %d -> %d", stashedBefore, tab.StashLen())
	}
	checkInv(t, tab)
}

func TestGrowValidation(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 16, Seed: 73})
	if err := tab.Grow(0.5); err == nil {
		t.Error("shrinking factor accepted")
	}
	btab := mustNewBlocked(t, Config{BucketsPerTable: 16, Seed: 73})
	if err := btab.Grow(0); err == nil {
		t.Error("zero factor accepted (blocked)")
	}
}

func TestGrowInPlaceReabsorbsStash(t *testing.T) {
	// Grow(1) = rehash at the same size with fresh hash functions; after
	// deletions freed space, it should pull stashed items back in.
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 75, AssumeUniqueKeys: true,
		StashEnabled: true, MaxLoop: 30})
	keys := fillKeys(76, 190)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if tab.StashLen() == 0 {
		t.Skip("no stash pressure with this seed")
	}
	for _, k := range keys[:80] {
		tab.Delete(k)
	}
	if err := tab.Grow(1); err != nil {
		t.Fatalf("Grow(1): %v", err)
	}
	if tab.StashLen() != 0 {
		t.Errorf("stash still holds %d items after in-place rehash at %.0f%% load",
			tab.StashLen(), tab.LoadRatio()*100)
	}
	for _, k := range keys[80:] {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost across in-place rehash", k)
		}
	}
	checkInv(t, tab)
}

func TestGrowAfterDeletionsRestoresRuleOne(t *testing.T) {
	// A rebuild resets deletedAny: the zero-counter shortcut works again.
	tab := mustNew(t, Config{BucketsPerTable: 1 << 10, Seed: 77, AssumeUniqueKeys: true})
	keys := fillKeys(78, 200)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	tab.Delete(keys[0])
	if err := tab.Grow(1); err != nil {
		t.Fatal(err)
	}
	before := tab.Meter().Snapshot()
	misses := fillKeys(7979, 300)
	for _, k := range misses {
		tab.Lookup(k)
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if perMiss := float64(delta.OffChipReads) / float64(len(misses)); perMiss > 0.05 {
		t.Errorf("misses cost %.3f reads after rebuild, want ~0 (rule 1 restored)", perMiss)
	}
}

func TestBlockedGrowRecoversAllItems(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 64, Seed: 79, AssumeUniqueKeys: true,
		StashEnabled: true, MaxLoop: 100})
	keys := fillKeys(80, tab.Capacity()) // 100% load
	for _, k := range keys {
		if tab.Insert(k, k+5).Status == kv.Failed {
			t.Fatal("fill failed")
		}
	}
	if err := tab.Grow(1.5); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k+5 {
			t.Fatalf("key %#x lost across blocked Grow", k)
		}
	}
	checkBlockedInv(t, tab)
}

func TestGrowChargesTraffic(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 81, AssumeUniqueKeys: true,
		StashEnabled: true})
	for _, k := range fillKeys(82, 100) {
		tab.Insert(k, k)
	}
	before := tab.Meter().Snapshot()
	if err := tab.Grow(2); err != nil {
		t.Fatal(err)
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipReads < int64(3*64) {
		t.Errorf("Grow charged %d reads, want at least the full-table read (192)", delta.OffChipReads)
	}
	if delta.OffChipWrites < 100 {
		t.Errorf("Grow charged %d writes, want at least one per item", delta.OffChipWrites)
	}
}
