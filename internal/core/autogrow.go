package core

// Auto-grow: graceful degradation under stash pressure (Config.AutoGrow).
// The stash absorbs insertion failures cheaply, but a stash that keeps
// filling means the configured geometry is past its load threshold and every
// subsequent lookup pays the stash-probe tax. The policy converts that
// pressure into capacity: when an insert lands in the stash while the stash
// population exceeds StashThreshold, the table grows by Factor; if the
// rebuild leaves the stash still over the threshold (the rehash itself can
// re-stash items), the factor backs off multiplicatively and growth retries,
// up to MaxAttempts per trigger. Every attempt and outcome is surfaced in
// Stats so operators can see the table resizing under them.
//
// The hook sits at the end of overflowInsert — the single point every
// stash-bound insert funnels through (Insert, the random walk, and the
// pathwise StashOverflow) — and runs after the stash write completes, so the
// triggering item participates in the rebuild. The growing flag keeps the
// rehash's own reinsertions (which may themselves stash items) from
// re-entering the policy.

// maybeAutoGrow runs the auto-grow policy after an insert stashed an item.
func (t *Table) maybeAutoGrow() {
	p := &t.cfg.AutoGrow
	if !p.Enabled || t.growing || t.StashLen() <= p.StashThreshold {
		return
	}
	t.growing = true
	defer func() { t.growing = false }()
	factor := p.Factor
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		t.stats.GrowAttempts++
		if err := t.Grow(factor); err != nil {
			t.stats.GrowFailures++
		} else if t.StashLen() <= p.StashThreshold {
			t.stats.Grows++
			return
		}
		factor *= p.Backoff
	}
}

// maybeAutoGrow runs the auto-grow policy after an insert stashed an item.
func (t *BlockedTable) maybeAutoGrow() {
	p := &t.cfg.AutoGrow
	if !p.Enabled || t.growing || t.StashLen() <= p.StashThreshold {
		return
	}
	t.growing = true
	defer func() { t.growing = false }()
	factor := p.Factor
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		t.stats.GrowAttempts++
		if err := t.Grow(factor); err != nil {
			t.stats.GrowFailures++
		} else if t.StashLen() <= p.StashThreshold {
			t.stats.Grows++
			return
		}
		factor *= p.Backoff
	}
}
