// Package atomicio provides crash-safe whole-file writes: the content goes
// to a temporary file in the destination directory, is fsynced, and is then
// atomically renamed over the destination, so a crash at any point leaves
// either the old file or the new file — never a torn mixture. Combined with
// the snapshot format's checksums this gives the persistence layer its
// guarantee: a snapshot file either loads as written or is rejected.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temporary file lives in path's directory (rename is only atomic within
// a filesystem) and is removed on any failure. After the rename the
// directory is fsynced best-effort so the new directory entry itself is
// durable.
func WriteFile(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		tmpName = ""
		return fmt.Errorf("atomicio: rename into place: %w", err)
	}
	tmpName = "" // renamed away; nothing to clean up
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best effort: some filesystems (and platforms) reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
