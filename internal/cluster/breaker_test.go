package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b := newBreaker(3, time.Hour, 1)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.onFailure()
	}
	if b.isOpen() {
		t.Fatal("breaker opened below its threshold")
	}
	b.onFailure()
	if !b.isOpen() {
		t.Fatal("breaker stayed closed at its threshold")
	}
	if b.trips.Load() != 1 {
		t.Fatalf("trips = %d, want 1", b.trips.Load())
	}
	// With the probe an hour out, everything is skipped.
	for i := 0; i < 5; i++ {
		if b.allow() {
			t.Fatal("open breaker admitted a request before its probe time")
		}
	}
	if b.skips.Load() != 5 {
		t.Fatalf("skips = %d, want 5", b.skips.Load())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker(3, time.Hour, 2)
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.isOpen() {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, time.Millisecond, 3)
	b.onFailure()
	if !b.isOpen() {
		t.Fatal("threshold-1 breaker did not trip")
	}
	// Wait past the jittered probe time (at most 1.5×probeEvery).
	time.Sleep(5 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe request rejected after the probe interval")
	}
	// While that probe is in flight, everyone else is skipped.
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// A failed probe re-arms the open interval…
	b.onFailure()
	if b.allow() {
		t.Fatal("request admitted immediately after a failed probe")
	}
	// …and a successful probe re-closes the breaker.
	time.Sleep(5 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second probe rejected")
	}
	b.onSuccess()
	if b.isOpen() {
		t.Fatal("breaker still open after a successful probe")
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected a request")
	}
}

func TestBreakerJitterIsSeeded(t *testing.T) {
	draws := func(seed uint64) []time.Duration {
		b := newBreaker(1, time.Hour, seed)
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, time.Duration(b.next()%uint64(b.probeEvery)))
		}
		return out
	}
	a, b := draws(7), draws(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v for equal seeds", i, a[i], b[i])
		}
	}
}
