package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mccuckoo/internal/telemetry"
	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

// treeHasChain reports whether the tree rooted at n contains, starting at
// the root, the given kind chain along some descendant path.
func treeHasChain(n *trace.Node, kinds []trace.Kind) bool {
	if len(kinds) == 0 {
		return true
	}
	if n.Span.Kind != kinds[0] {
		return false
	}
	if len(kinds) == 1 {
		return true
	}
	for _, c := range n.Children {
		if treeHasChain(c, kinds[1:]) {
			return true
		}
	}
	return false
}

// TestTracedClusterScrapeUnderTraffic extends the kill-a-node drill with the
// observability surface live: a 3-node R=2 W=2 cluster serves fully-sampled
// traced traffic while goroutines hammer every node's merged /metrics and
// trace-dump handlers, a node dies and restarts mid-run, and afterwards the
// client's ack-skew histogram is populated and one connected cross-node span
// tree (client_op -> replica_rtt -> server_op on another process's recorder)
// is reconstructable from the combined span dumps. Run under -race this is
// the proof that scraping never tears the seqlock ring or the histograms.
func TestTracedClusterScrapeUnderTraffic(t *testing.T) {
	addrs := freeAddrs(t, 3)
	recs := make([]*trace.Recorder, 3)
	nodes := make([]*testNode, 3)
	for i, addr := range addrs {
		recs[i] = trace.New(trace.Options{Capacity: 1 << 12, Sample: 1})
		nodes[i] = startTestNode(t, addr, addrs, nodeOpts{trace: recs[i]})
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	ctr := trace.New(trace.Options{Capacity: 1 << 12, Sample: 1})
	c, err := New(Config{
		Nodes:       addrs,
		Replicas:    2,
		WriteQuorum: 2,
		Seed:        testRingSeed,
		Trace:       ctr,
		// A tight dial timeout keeps the dead-node window cheap: the victim
		// costs one short dial failure per key until its breaker opens, not
		// a 5s default dial timeout each. Round-trip timeouts stay at their
		// defaults — the race detector plus the scrape load makes a live
		// node legitimately slow.
		BreakerProbe: 100 * time.Millisecond,
		Wire:         wire.ClientConfig{DialTimeout: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Scrapers: one per node serving the same merged handler mcserved
	// mounts, plus its trace dump, plus the cluster client's exposition.
	// Handlers are captured up front so the mid-run node swap below cannot
	// race the scraper goroutines on the nodes slice.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrape := func(h http.Handler, path string, check func(t *testing.T, body []byte)) {
		defer scrapeWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopScrape:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != http.StatusOK {
				t.Errorf("scrape %s: status %d", path, rec.Code)
				return
			}
			// Decoding every response would make the test spend its time in
			// the race-instrumented json decoder, not the surface under
			// test; a subsample still catches a torn dump.
			if check != nil && i%16 == 0 {
				check(t, rec.Body.Bytes())
			}
			// ReadMemStats in the runtime part briefly stops the world, so
			// scrape at a realistic cadence rather than a busy loop.
			time.Sleep(20 * time.Millisecond)
		}
	}
	jsonCheck := func(t *testing.T, body []byte) {
		var spans []map[string]any
		if err := json.Unmarshal(body, &spans); err != nil {
			t.Errorf("trace dump not valid JSON: %v", err)
		}
	}
	for i := range nodes {
		metrics := telemetry.MergedHandler(
			nodes[i].srv.WritePrometheus,
			nodes[i].r.WritePrometheus,
			recs[i].WritePrometheus,
			telemetry.WriteRuntimeMetrics,
		)
		scrapeWG.Add(2)
		go scrape(metrics, "/metrics", nil)
		go scrape(recs[i].Handler(), "/debug/mccuckoo/trace?limit=64", jsonCheck)
	}
	clientMetrics := telemetry.MergedHandler(c.WritePrometheus, ctr.WritePrometheus)
	scrapeWG.Add(2)
	go scrape(clientMetrics, "/metrics", nil)
	go scrape(ctr.Handler(), "/debug/mccuckoo/trace?limit=64", jsonCheck)

	// Traced traffic spanning a node kill and restart.
	const keys = 400
	for k := uint64(1); k <= keys/2; k++ {
		if err := c.Put(k, k*3); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	victim := 2
	nodes[victim].stop()
	for k := uint64(keys/2 + 1); k <= keys; k++ {
		// W=2 with a node down can legitimately miss quorum for keys the
		// dead node replicates; the write still lands on the live replica.
		_ = c.Put(k, k*3)
	}
	nodes[victim] = startTestNode(t, addrs[victim], addrs, nodeOpts{trace: recs[victim]})
	waitFor(t, 10*time.Second, "restarted node to rejoin", func() bool {
		for k := uint64(1); k <= keys; k += 37 {
			if _, found, err := c.Get(k); err != nil || !found {
				return false
			}
		}
		return true
	})

	close(stopScrape)
	scrapeWG.Wait()

	// The ack-skew histogram is the W>1 consistency window; full sampling
	// and W=2 means every healthy put observed at least two acks.
	if n := c.MetricsSnapshot().AckSkew.Count; n == 0 {
		t.Fatal("ack-skew histogram empty after W=2 traffic")
	}

	// One connected cross-node tree: the client's root and rtt spans join
	// the server-side spans (different recorder, same trace id) into
	// client_op -> replica_rtt -> server_op -> table_op.
	all := ctr.Spans()
	for _, r := range recs {
		all = append(all, r.Spans()...)
	}
	want := []trace.Kind{trace.KindClientOp, trace.KindReplicaRTT, trace.KindServerOp, trace.KindTableOp}
	found := false
	for _, root := range trace.Trees(all) {
		if treeHasChain(root, want) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no connected client_op->replica_rtt->server_op->table_op tree across %d spans", len(all))
	}
}
