package cluster

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

// ReplicatorConfig configures a node-side Replicator.
type ReplicatorConfig struct {
	// Self is this node's address as it appears in Nodes — entries for
	// keys this node does not own (per the ring) are skipped.
	Self string

	// Nodes, Replicas, VNodes, Seed parameterize the ring and must match
	// the cluster clients' configuration.
	Nodes    []string
	Replicas int
	VNodes   int
	Seed     uint64

	// DialTimeout bounds each peer dial (default 5s); ReadTimeout bounds
	// the wait for the next stream frame (default 10s — comfortably above
	// the server's keepalive cadence, so an expiry means a dead peer).
	DialTimeout time.Duration
	ReadTimeout time.Duration

	// Dial, when non-nil, replaces net.DialTimeout for peer subscriptions.
	// The fault-injection layer (internal/netchaos) interposes here.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	// RetryBase is the first reconnect backoff; each failure doubles it up
	// to RetryMax, with ±50% jitter (defaults 100ms, 3s).
	RetryBase time.Duration
	RetryMax  time.Duration

	// Logf, when non-nil, receives one line per abnormal peer event.
	Logf func(format string, args ...any)

	// Trace, when non-nil, records a repl_apply span around each streamed
	// batch apply (entries applied in Kicks, stream lag in Wait). Stream
	// applies have no client context, so these spans surface only through
	// the recorder's slow-capture threshold — the interesting case, an
	// apply stalling behind a kick storm. Nil disables tracing.
	Trace *trace.Recorder
}

// Replicator keeps one node's Replicated store converged with its peers: a
// goroutine per peer subscribes to the peer's op log, resuming from this
// node's applied sequence number, applies the streamed entries this node
// owns, and reconnects with backoff when the peer goes away. A restarted
// node needs no special bootstrap path — its first subscription resumes
// from whatever its snapshot+sidecar restored, and the peer answers with a
// full state dump when that point predates its op log.
//
//mcvet:lifecycle
type Replicator struct {
	cfg  ReplicatorConfig
	ring *Ring
	rep  *wire.Replicated
	tr   *trace.Recorder

	stop chan struct{}
	wg   sync.WaitGroup

	// peerStates is fixed at Start and only read afterwards.
	peerStates map[string]*peerState
}

// peerState is the per-peer telemetry the replica-lag metric reads.
type peerState struct {
	// lag is the peer's advertised head minus the newest sequence number
	// seen on its stream, clamped at zero. It is measured before the
	// ownership filter — a node that skips entries it does not own is not
	// lagging — so it reads zero exactly when the subscription has drained
	// everything the peer has.
	lag       atomic.Int64
	applied   atomic.Int64
	stale     atomic.Int64
	failed    atomic.Int64
	connects  atomic.Int64
	errors    atomic.Int64
	fullSyncs atomic.Int64

	// lastFrame is the unix-nano timestamp of the newest frame received on
	// this peer's subscription, zero before the first handshake completes.
	// The stream-age gauge derives from it: a lag gauge stuck at zero can
	// mean "current" or "stream dead and nothing advertised" — the frame
	// age distinguishes the two.
	lastFrame atomic.Int64
}

// NewReplicator validates cfg and prepares the per-peer loops; Start
// launches them.
func NewReplicator(rep *wire.Replicated, cfg ReplicatorConfig) (*Replicator, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 3 * time.Second
	}
	r := &Replicator{
		cfg:        cfg,
		ring:       ring,
		rep:        rep,
		tr:         cfg.Trace,
		stop:       make(chan struct{}),
		peerStates: make(map[string]*peerState),
	}
	for _, addr := range ring.Nodes() {
		if addr == cfg.Self {
			continue
		}
		r.peerStates[addr] = &peerState{}
	}
	return r, nil
}

func (r *Replicator) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Start launches one subscription loop per peer.
func (r *Replicator) Start() {
	for addr, st := range r.peerStates {
		r.wg.Add(1)
		go r.peerLoop(addr, st)
	}
}

// Close stops every peer loop and waits for them to exit.
func (r *Replicator) Close() {
	close(r.stop)
	r.wg.Wait()
}

// peerLoop subscribes to one peer forever (until Close), reconnecting with
// jittered exponential backoff.
func (r *Replicator) peerLoop(addr string, st *peerState) {
	defer r.wg.Done()
	backoff := r.cfg.RetryBase
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		err := r.streamOnce(addr, st)
		if err == nil {
			return // stopped
		}
		st.errors.Add(1)
		r.logf("cluster: peer %s: %v", addr, err)
		d := backoff/2 + rand.N(backoff)
		backoff *= 2
		if backoff > r.cfg.RetryMax {
			backoff = r.cfg.RetryMax
		}
		select {
		case <-r.stop:
			return
		case <-time.After(d):
		}
	}
}

// streamOnce runs one subscription: dial, handshake, then apply stream
// frames until the connection breaks (returned as an error) or Close (nil).
//
//mcvet:deadlined
func (r *Replicator) streamOnce(addr string, st *peerState) error {
	dial := r.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, r.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer nc.Close()
	st.connects.Add(1)

	// Close interrupts the blocking read below by killing the connection.
	dead := make(chan struct{})
	defer close(dead)
	go func() {
		select {
		case <-r.stop:
			nc.Close()
		case <-dead:
		}
	}()

	fromSeq := r.rep.Applied()
	sub := wire.AppendFrame(nil, wire.Frame{
		Type:    wire.OpSub,
		ID:      1,
		Payload: wire.AppendSubscribePayload(nil, fromSeq),
	})
	// A failed deadline arm is a connection failure — proceeding without
	// the deadline could hang the subscribe write on a dead peer.
	if err := nc.SetWriteDeadline(time.Now().Add(r.cfg.DialTimeout)); err != nil {
		return fmt.Errorf("subscribe: set write deadline: %w", err)
	}
	if _, err := nc.Write(sub); err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}

	var buf []byte
	var f wire.Frame
	readFrame := func() error {
		if derr := nc.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout)); derr != nil {
			return fmt.Errorf("set read deadline: %w", derr)
		}
		f, buf, err = wire.ReadFrame(nc, wire.DefaultMaxPayload, buf)
		if err == nil {
			st.lastFrame.Store(time.Now().UnixNano())
		}
		return err
	}
	if err := readFrame(); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if !f.IsResponse() || f.Status() != wire.StatusOK {
		return fmt.Errorf("handshake rejected: %s", handshakeReject(f))
	}
	head, full, ok := wire.ParseSubscribeResponse(f.Payload)
	if !ok {
		return fmt.Errorf("malformed subscribe response")
	}
	if full {
		st.fullSyncs.Add(1)
		r.logf("cluster: peer %s: resume point %d predates op log; taking full sync", addr, fromSeq)
	}
	// seen is the newest sequence number this stream has delivered,
	// counted before the ownership filter. A head above it means entries
	// are still in flight; a head at or below it means we are current.
	seen := uint64(0)
	observeHead(st, head, seen)

	var ents []wire.Entry
	owned := make([]wire.Entry, 0, 256)
	for {
		if err := readFrame(); err != nil {
			select {
			case <-r.stop:
				return nil
			default:
			}
			return fmt.Errorf("stream: %w", err)
		}
		if f.IsResponse() {
			// The only in-band response after the handshake is the ERR the
			// server sends when the subscription overran the op log.
			return fmt.Errorf("stream ended: %s", handshakeReject(f))
		}
		if f.Type != wire.OpReplicate {
			return fmt.Errorf("unexpected %s frame on subscription", wire.OpName(f.Type))
		}
		head, parsed, ok := wire.ParseReplicatePayload(f.Payload, ents)
		if !ok {
			return fmt.Errorf("malformed replicate frame")
		}
		ents = parsed
		owned = owned[:0]
		for _, e := range ents {
			if e.Seq > seen {
				seen = e.Seq
			}
			if r.ring.Owns(r.cfg.Self, e.Key, r.cfg.Replicas) {
				owned = append(owned, e)
			}
		}
		if len(owned) > 0 {
			// No client context reaches a stream apply, so the span's trace
			// id is zero and only the recorder's slow-capture threshold can
			// surface it — exactly the apply-stall case worth keeping.
			asp := r.tr.Start(trace.Context{}, trace.KindReplApply)
			asp.Op, asp.Peer = wire.OpReplicate, trace.PeerHash(addr)
			applied, stale, failed := r.rep.ApplyStream(owned)
			asp.Kicks = int32(applied)
			if head > seen {
				asp.Wait = int64(head - seen)
			}
			asp.Finish()
			st.applied.Add(int64(applied))
			st.stale.Add(int64(stale))
			st.failed.Add(int64(failed))
		}
		observeHead(st, head, seen)
	}
}

// observeHead refreshes the peer's lag gauge: its advertised high-water
// sequence number minus the newest sequence its stream has delivered,
// clamped at zero (a peer cannot advertise less than it has sent without
// the gauge simply reading current).
func observeHead(st *peerState, head, seen uint64) {
	lag := int64(0)
	if head > seen {
		lag = int64(head - seen)
	}
	st.lag.Store(lag)
}

// handshakeReject renders a rejection frame for an error message.
func handshakeReject(f wire.Frame) string {
	if f.IsResponse() && f.Status() == wire.StatusErr {
		return string(f.Payload)
	}
	return fmt.Sprintf("unexpected frame type %#02x", f.Type)
}

// StreamAges reports, per peer, the seconds since the last frame arrived on
// its subscription stream, or -1 for a peer whose stream has never produced
// a frame. Keepalives count, so a healthy idle stream stays young while a
// dead one ages past the server's keepalive cadence.
func (r *Replicator) StreamAges() map[string]float64 {
	now := time.Now().UnixNano()
	ages := make(map[string]float64, len(r.peerStates))
	for addr, st := range r.peerStates {
		last := st.lastFrame.Load()
		if last == 0 {
			ages[addr] = -1
			continue
		}
		ages[addr] = float64(now-last) / 1e9
	}
	return ages
}

// MaxLag returns the largest per-peer replica lag, in op-log entries.
func (r *Replicator) MaxLag() int64 {
	var max int64
	for _, st := range r.peerStates {
		if l := st.lag.Load(); l > max {
			max = l
		}
	}
	return max
}

// WritePrometheus writes the per-peer replication metrics in Prometheus
// text exposition under the mccuckoo_peer_ prefix.
func (r *Replicator) WritePrometheus(w io.Writer) error {
	addrs := make([]string, 0, len(r.peerStates))
	for addr := range r.peerStates {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	series := func(name, help, typ string, get func(*peerState) int64) {
		pf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, addr := range addrs {
			pf("%s{peer=%q} %d\n", name, addr, get(r.peerStates[addr]))
		}
	}
	series("mccuckoo_peer_replica_lag", "Peer head minus newest streamed sequence number.", "gauge",
		func(st *peerState) int64 { return st.lag.Load() })
	series("mccuckoo_peer_entries_applied_total", "Streamed entries applied from this peer.", "counter",
		func(st *peerState) int64 { return st.applied.Load() })
	series("mccuckoo_peer_entries_stale_total", "Streamed entries ignored as stale.", "counter",
		func(st *peerState) int64 { return st.stale.Load() })
	series("mccuckoo_peer_entries_failed_total", "Streamed entries that lost to table capacity.", "counter",
		func(st *peerState) int64 { return st.failed.Load() })
	series("mccuckoo_peer_connects_total", "Subscription connections established to this peer.", "counter",
		func(st *peerState) int64 { return st.connects.Load() })
	series("mccuckoo_peer_errors_total", "Subscription failures for this peer.", "counter",
		func(st *peerState) int64 { return st.errors.Load() })
	series("mccuckoo_peer_full_syncs_total", "Subscriptions that required a full state dump.", "counter",
		func(st *peerState) int64 { return st.fullSyncs.Load() })
	ages := r.StreamAges()
	pf("# HELP %s %s\n# TYPE %s %s\n", "mccuckoo_peer_stream_age_seconds",
		"Seconds since the last subscription frame from this peer (-1: never connected).",
		"mccuckoo_peer_stream_age_seconds", "gauge")
	for _, addr := range addrs {
		pf("%s{peer=%q} %g\n", "mccuckoo_peer_stream_age_seconds", addr, ages[addr])
	}
	return err
}
