package cluster

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mccuckoo/internal/netchaos"
	"mccuckoo/internal/wire"
)

func TestDigestFilterOwnership(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	ring, err := NewRing(nodes, 64, testRingSeed)
	if err != nil {
		t.Fatal(err)
	}
	filter := DigestFilter(ring, "a", 2)
	for key := uint64(1); key < 2000; key += 13 {
		for _, peer := range nodes {
			want := ring.Owns("a", key, 2) && ring.Owns(peer, key, 2)
			if got := filter(peer, key); got != want {
				t.Fatalf("filter(%s, %d) = %v, want %v", peer, key, got, want)
			}
		}
	}
}

// startSweeper builds a sweeper for one node. Every node gets one even in
// tests that only run some of them: NewSweeper installs the node's
// ownership digest filter, which the node needs to answer its peers'
// DIGEST requests over the shared key set.
func startSweeper(t *testing.T, n *testNode, nodes []string, leafKeys int, dial func(string, time.Duration) (net.Conn, error)) *Sweeper {
	t.Helper()
	cfg := SweeperConfig{
		Self:     n.addr,
		Nodes:    nodes,
		Replicas: 2,
		Seed:     testRingSeed,
		LeafKeys: leafKeys,
		Logf:     t.Logf,
	}
	if dial != nil {
		cfg.Wire.Dial = dial
	}
	sw, err := NewSweeper(n.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Close)
	return sw
}

// TestSweeperBisectionRepairsDivergence seeds four kinds of divergence
// directly into a 3-node R=2 cluster — one-sided writes in both directions,
// a stale copy, and a tombstone shadowed by an older live value — and
// checks that sweeping reconciles every owner pair through range bisection
// (leaf size far below the key count) with both pull and push repairs.
func TestSweeperBisectionRepairsDivergence(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var nodes []*testNode
	for _, a := range addrs {
		n := startTestNode(t, a, addrs, nodeOpts{noReplicator: true})
		defer n.stop()
		nodes = append(nodes, n)
	}
	byAddr := make(map[string]*testNode, len(nodes))
	for _, n := range nodes {
		byAddr[n.addr] = n
	}
	ring, err := NewRing(addrs, 0, testRingSeed)
	if err != nil {
		t.Fatal(err)
	}

	// want records the converged end state per key: value and sequence a
	// correct sweep must leave on every owner (tomb=true for deletions).
	type finalState struct {
		value uint64
		seq   uint64
		tomb  bool
	}
	want := make(map[uint64]finalState)
	apply := func(n *testNode, e wire.Entry) {
		if st := n.rep.ApplyPush([]wire.Entry{e}, nil); st[0] != wire.ApplyApplied {
			t.Fatalf("seeding key %d on %s: status %d", e.Key, n.addr, st[0])
		}
	}
	var owners []string
	for i := uint64(0); i < 200; i++ {
		key := i*0x9e3779b97f4a7c15 + 1
		owners = ring.Replicas(key, 2, owners[:0])
		a, b := byAddr[owners[0]], byAddr[owners[1]]
		seq := 1000 + i*10
		put := wire.Entry{Seq: seq, Op: wire.OpPut, Key: key, Value: key ^ seq}
		switch i % 4 {
		case 0: // present only on the first owner
			apply(a, put)
			want[key] = finalState{value: put.Value, seq: seq}
		case 1: // present only on the second owner
			apply(b, put)
			want[key] = finalState{value: put.Value, seq: seq}
		case 2: // both have it, one copy stale
			apply(a, put)
			apply(b, put)
			newer := wire.Entry{Seq: seq + 5, Op: wire.OpPut, Key: key, Value: put.Value + 1}
			apply(b, newer)
			want[key] = finalState{value: newer.Value, seq: seq + 5}
		default: // tombstone on one owner shadowing a live copy on the other
			apply(a, put)
			apply(b, wire.Entry{Seq: seq + 5, Op: wire.OpDel, Key: key})
			want[key] = finalState{seq: seq + 5, tomb: true}
		}
	}

	var sweepers []*Sweeper
	for _, n := range nodes {
		sweepers = append(sweepers, startSweeper(t, n, addrs, 8, nil))
	}
	for i, sw := range sweepers {
		if _, err := sw.SweepOnce(); err != nil {
			t.Fatalf("sweep from node %d: %v", i, err)
		}
	}

	for key, fs := range want {
		owners = ring.Replicas(key, 2, owners[:0])
		for _, addr := range owners {
			st, v, seq := byAddr[addr].rep.VGet(key)
			if fs.tomb {
				if st != wire.VStateTomb || seq != fs.seq {
					t.Fatalf("key %d on %s: state %d seq %d, want tomb at %d", key, addr, st, seq, fs.seq)
				}
			} else if st != wire.VStateLive || v != fs.value || seq != fs.seq {
				t.Fatalf("key %d on %s: state %d value %d seq %d, want live %d at %d",
					key, addr, st, v, seq, fs.value, fs.seq)
			}
		}
	}

	// Every owner pair must now agree on its shared key set: both sides'
	// ownership-filtered digests of the full key space are equal.
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			ad, ac, _ := a.rep.DigestRange(b.addr, 0, ^uint64(0), 1)
			bd, bc, _ := b.rep.DigestRange(a.addr, 0, ^uint64(0), 1)
			if ad != bd || ac != bc {
				t.Fatalf("pair (%s,%s) diverged after sweep: %x/%d vs %x/%d",
					a.addr, b.addr, ad, ac, bd, bc)
			}
		}
	}

	var pulled, pushed, mismatched int64
	for _, sw := range sweepers {
		st := sw.StatsSnapshot()
		pulled += st.KeysPulled
		pushed += st.KeysPushed
		mismatched += st.MismatchedRanges
		if st.RangesTruncated != 0 {
			t.Fatalf("sweep hit its range budget: %+v", st)
		}
		if st.Ranges <= st.Sweeps {
			t.Fatalf("leaf size 8 with 200 keys did not bisect: %+v", st)
		}
	}
	if pulled == 0 || pushed == 0 {
		t.Fatalf("expected both repair directions, got pulled=%d pushed=%d", pulled, pushed)
	}
	if mismatched == 0 {
		t.Fatal("no mismatched ranges recorded despite seeded divergence")
	}

	// A second full round finds nothing left to repair.
	for i, sw := range sweepers {
		if n, err := sw.SweepOnce(); err != nil || n != 0 {
			t.Fatalf("second sweep from node %d: repaired %d, err %v", i, n, err)
		}
	}
}

// TestSweeperBudgetTruncationIsCounted pins the no-silent-caps rule: a
// sweep that exhausts MaxRanges mid-bisection must report the ranges it
// never compared.
func TestSweeperBudgetTruncationIsCounted(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a := startTestNode(t, addrs[0], addrs, nodeOpts{noReplicator: true})
	defer a.stop()
	b := startTestNode(t, addrs[1], addrs, nodeOpts{noReplicator: true})
	defer b.stop()

	for i := uint64(0); i < 64; i++ {
		key := i*0x9e3779b97f4a7c15 + 1
		st := a.rep.ApplyPush([]wire.Entry{{Seq: 10 + i, Op: wire.OpPut, Key: key, Value: i}}, nil)
		if st[0] != wire.ApplyApplied {
			t.Fatalf("seeding key %d: status %d", key, st[0])
		}
	}

	cfg := SweeperConfig{
		Self: addrs[0], Nodes: addrs, Replicas: 2, Seed: testRingSeed,
		LeafKeys: 1, MaxRanges: 1, Logf: t.Logf,
	}
	sw, err := NewSweeper(a.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	if _, err := sw.SweepOnce(); err != nil {
		t.Fatal(err)
	}
	st := sw.StatsSnapshot()
	if st.RangesTruncated == 0 {
		t.Fatalf("budget of 1 range over 64 divergent keys reported no truncation: %+v", st)
	}
}

// TestSweeperBreakerSkipsDeadPeer checks the sweep loop's own degradation:
// a peer that keeps failing its sweeps trips a breaker and later sweeps
// skip it — counted, not silent — instead of paying a dial failure every
// interval.
func TestSweeperBreakerSkipsDeadPeer(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a := startTestNode(t, addrs[0], addrs, nodeOpts{noReplicator: true})
	defer a.stop()
	// addrs[1] is never started: every sweep of it fails at the dial.

	sw, err := NewSweeper(a.rep, SweeperConfig{
		Self: addrs[0], Nodes: addrs, Replicas: 2, Seed: testRingSeed,
		BreakerFailures: 2, BreakerProbe: time.Hour, Logf: t.Logf,
		Wire: wire.ClientConfig{DialTimeout: 200 * time.Millisecond, RetryBase: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	for i := 0; i < 5; i++ {
		if _, err := sw.SweepOnce(); err == nil {
			t.Fatalf("sweep %d of a dead peer reported success", i)
		}
		if sw.StatsSnapshot().Errors >= 2 {
			break
		}
	}
	st := sw.StatsSnapshot()
	if st.Errors != 2 {
		t.Fatalf("errors = %d before the breaker tripped, want 2", st.Errors)
	}
	// With the breaker open, further sweeps skip the peer entirely.
	for i := 0; i < 3; i++ {
		if _, err := sw.SweepOnce(); err != nil {
			t.Fatalf("sweep with open breaker still attempted the peer: %v", err)
		}
	}
	st = sw.StatsSnapshot()
	if st.Errors != 2 {
		t.Fatalf("errors grew to %d while the breaker was open", st.Errors)
	}
	if st.PeersSkipped != 3 {
		t.Fatalf("PeersSkipped = %d, want 3", st.PeersSkipped)
	}
}

// TestChaosPartitionWritesSurviveAndSweepHeals is the chaos drill (and the
// ci.sh short-mode smoke): under a seeded partition cutting the client off
// one node of a 2-node R=2 cluster, W=1 writes keep succeeding against the
// reachable replica and the victim's breaker trips so the dead peer is
// skipped instead of stalling each write; after the partition heals, one
// anti-entropy sweep — with read-repair provably uninvolved — drives both
// nodes' digests back to equality.
func TestChaosPartitionWritesSurviveAndSweepHeals(t *testing.T) {
	addrs := freeAddrs(t, 2)
	chaos := netchaos.New(0xC4A05)
	up := startTestNode(t, addrs[0], addrs, nodeOpts{noReplicator: true})
	defer up.stop()
	victim := startTestNode(t, addrs[1], addrs, nodeOpts{noReplicator: true})
	defer victim.stop()

	var seq atomic.Uint64
	c, err := New(Config{
		Nodes:       addrs,
		Replicas:    2,
		WriteQuorum: 1,
		Seed:        testRingSeed,
		OpTimeout:   2 * time.Second,
		// Threshold 2 so the drill observes the trip quickly; a probe
		// interval far beyond the test keeps the open state deterministic.
		BreakerFailures: 2,
		BreakerProbe:    time.Hour,
		Wire:            wire.ClientConfig{Dial: chaos.Dialer("client")},
		SeqSource:       func() uint64 { return seq.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Healthy phase: baseline writes reach both replicas (W=1 acks early,
	// so wait for the trailing pushes before judging convergence).
	for k := uint64(1); k <= 50; k++ {
		if err := c.Put(k, k*7); err != nil {
			t.Fatalf("baseline put %d: %v", k, err)
		}
	}
	waitFor(t, 5*time.Second, "baseline replication", func() bool {
		return up.rep.Digest() == victim.rep.Digest()
	})

	// Partition: the client loses the victim (one-way rule — the victim
	// could still reach out, it just never hears from this client again).
	chaos.PartitionOneWay("client", victim.addr)
	chaos.ResetConns("client", victim.addr)

	start := time.Now()
	for k := uint64(100); k < 150; k++ {
		if err := c.Put(k, k*7); err != nil {
			t.Fatalf("put %d during partition: %v", k, err)
		}
	}
	for k := uint64(1); k <= 5; k++ { // tombstone divergence
		if err := c.Del(k); err != nil {
			t.Fatalf("del %d during partition: %v", k, err)
		}
	}
	// 55 writes against a dead peer must cost nowhere near one OpTimeout:
	// the first failures are instant dial cuts, everything after the trip
	// is an instant breaker skip.
	if elapsed := time.Since(start); elapsed > c.cfg.OpTimeout {
		t.Fatalf("partition-phase writes took %v — breaker did not prevent stalls", elapsed)
	}
	// Degraded reads of undiverged keys still answer from the live side.
	for k := uint64(10); k <= 15; k++ {
		v, ok, err := c.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("get %d during partition: %d %v %v", k, v, ok, err)
		}
	}

	m := c.MetricsSnapshot()
	if m.QuorumFailures != 0 {
		t.Fatalf("QuorumFailures = %d during W=1 partition writes", m.QuorumFailures)
	}
	if m.BreakerTrips[victim.addr] == 0 {
		t.Fatal("victim breaker never tripped")
	}
	if m.BreakerSkips[victim.addr] == 0 {
		t.Fatal("open breaker never skipped a request")
	}
	if !m.BreakerOpen[victim.addr] {
		t.Fatal("victim breaker not reported open")
	}
	if m.DegradedReads == 0 {
		t.Fatal("partition-phase reads were not counted as degraded")
	}
	if up.rep.Digest() == victim.rep.Digest() {
		t.Fatal("partition produced no divergence")
	}

	// Heal, then converge by anti-entropy alone: the diverged keys are
	// never read through the client, so read-repair cannot be what heals
	// them — Repairs staying zero proves it.
	chaos.HealAll()
	swVictim := startSweeper(t, victim, addrs, 16, chaos.Dialer(victim.addr))
	swUp := startSweeper(t, up, addrs, 16, chaos.Dialer(up.addr))
	_ = swVictim // installs the victim's digest filter; the up node drives
	repaired, err := swUp.SweepOnce()
	if err != nil {
		t.Fatalf("sweep after heal: %v", err)
	}
	if repaired != 55 {
		t.Fatalf("sweep repaired %d keys, want 55 (50 puts + 5 tombstones)", repaired)
	}
	st := swUp.StatsSnapshot()
	if st.KeysPushed != 55 || st.KeysPulled != 0 {
		t.Fatalf("expected 55 pushed / 0 pulled, got %+v", st)
	}
	if st.MismatchedRanges == 0 || st.RangesTruncated != 0 {
		t.Fatalf("unexpected range accounting: %+v", st)
	}
	if up.rep.Digest() != victim.rep.Digest() {
		t.Fatal("digests still diverged after sweep")
	}
	if n, err := swUp.SweepOnce(); err != nil || n != 0 {
		t.Fatalf("post-convergence sweep: repaired %d, err %v", n, err)
	}
	if got := c.MetricsSnapshot().Repairs; got != 0 {
		t.Fatalf("read-repair ran %d times — convergence is not attributable to the sweeper", got)
	}

	// The victim's copies match what the client wrote.
	for k := uint64(100); k < 150; k++ {
		if st, v, _ := victim.rep.VGet(k); st != wire.VStateLive || v != k*7 {
			t.Fatalf("victim key %d after sweep: state %d value %d", k, st, v)
		}
	}
	for k := uint64(1); k <= 5; k++ {
		if st, _, _ := victim.rep.VGet(k); st != wire.VStateTomb {
			t.Fatalf("victim key %d after sweep: state %d, want tombstone", k, st)
		}
	}
}
