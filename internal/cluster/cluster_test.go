package cluster

import (
	"context"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mccuckoo"
	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

const testRingSeed = 7

// testNode is one in-process cluster member, mirroring what
// cmd/mcserved -peers assembles.
type testNode struct {
	addr string
	tab  *mccuckoo.Sharded
	rep  *wire.Replicated
	srv  *wire.Server
	r    *Replicator
}

type nodeOpts struct {
	oplogSize    int
	noReplicator bool
	// snap/sidecar, when set, restore the node's state before it serves —
	// the restart path a crashed mcserved takes.
	snap, sidecar string
	// trace, when set, is the node's flight recorder, threaded into both
	// the server and the replicator exactly as cmd/mcserved -trace does.
	trace *trace.Recorder
}

func startTestNode(t *testing.T, addr string, nodes []string, opt nodeOpts) *testNode {
	t.Helper()
	var tab *mccuckoo.Sharded
	var err error
	if opt.snap != "" {
		tab, err = mccuckoo.LoadShardedFile(opt.snap)
	} else {
		tab, err = mccuckoo.NewSharded(1<<14, 8, mccuckoo.WithSeed(42))
	}
	if err != nil {
		t.Fatal(err)
	}
	rep := wire.NewReplicated(tab, wire.ReplicaConfig{OplogSize: opt.oplogSize})
	if opt.sidecar != "" {
		if err := rep.LoadSidecar(opt.sidecar); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := wire.NewServer(wire.Config{Store: rep, SubKeepalive: 50 * time.Millisecond, Trace: opt.trace})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	n := &testNode{addr: addr, tab: tab, rep: rep, srv: srv}
	if !opt.noReplicator {
		n.r, err = NewReplicator(rep, ReplicatorConfig{
			Self:      addr,
			Nodes:     nodes,
			Replicas:  2,
			Seed:      testRingSeed,
			RetryBase: 10 * time.Millisecond,
			RetryMax:  250 * time.Millisecond,
			Trace:     opt.trace,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.r.Start()
	}
	return n
}

func (n *testNode) stop() {
	if n.r != nil {
		n.r.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
}

// freeAddrs reserves n distinct loopback addresses so every node can know
// the full ring before any node is up.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterKillNodeConvergence is the tentpole scenario: a 3-node R=2
// cluster under mixed traffic loses a node mid-run with zero failed reads,
// keeps accepting writes and deletes, and the node restarted from its
// snapshot + replication sidecar converges back to byte-identical state via
// the op-log catch-up stream.
func TestClusterKillNodeConvergence(t *testing.T) {
	addrs := freeAddrs(t, 3)
	nodes := make([]*testNode, 3)
	for i, addr := range addrs {
		nodes[i] = startTestNode(t, addr, addrs, nodeOpts{})
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	c, err := New(Config{Nodes: addrs, Replicas: 2, Seed: testRingSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const initial = 1500
	expected := make(map[uint64]uint64, initial)
	for k := uint64(1); k <= initial; k++ {
		if err := c.Put(k, k*7); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		expected[k] = k * 7
	}

	// Checkpoint node 0 so its restart exercises the snapshot+sidecar
	// restore path rather than a from-scratch sync.
	snap := filepath.Join(t.TempDir(), "n0.snap")
	sidecar := snap + ".replica"
	if err := nodes[0].rep.CheckpointWith(func() error {
		return nodes[0].tab.SaveFile(snap)
	}, sidecar); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Mixed traffic spanning the kill: two writers and a deleter run while
	// the node goes down.
	var wg sync.WaitGroup
	var trafficErrs atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(initial + 1 + w*150); k <= uint64(initial+(w+1)*150); k++ {
				if err := c.Put(k, k*7); err != nil {
					trafficErrs.Add(1)
					t.Errorf("put %d during kill window: %v", k, err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(1); k <= 100; k++ {
			if err := c.Del(k); err != nil {
				trafficErrs.Add(1)
				t.Errorf("del %d during kill window: %v", k, err)
			}
		}
	}()

	time.Sleep(10 * time.Millisecond)
	nodes[0].stop()

	// Every key still has a live replica: the full sweep over the untouched
	// key range must not fail a single read.
	failed := 0
	for k := uint64(101); k <= initial; k++ {
		v, found, err := c.Get(k)
		if err != nil || !found || v != k*7 {
			failed++
		}
	}
	if failed != 0 {
		t.Fatalf("%d failed reads with one node down, want 0", failed)
	}
	wg.Wait()
	if trafficErrs.Load() != 0 {
		t.Fatalf("%d writes/deletes failed during the kill window", trafficErrs.Load())
	}
	for k := uint64(initial + 1); k <= initial+300; k++ {
		expected[k] = k * 7
	}
	deleted := make([]uint64, 0, 100)
	for k := uint64(1); k <= 100; k++ {
		delete(expected, k)
		deleted = append(deleted, k)
	}

	// Restart node 0 from its checkpoint; the op-log subscriptions resume
	// from the sidecar's applied sequence and replay what it missed.
	nodes[0] = startTestNode(t, addrs[0], addrs, nodeOpts{snap: snap, sidecar: sidecar})

	ring := c.Ring()
	owned := func(k uint64) bool { return ring.Owns(addrs[0], k, 2) }
	waitFor(t, 15*time.Second, "restarted node to converge", func() bool {
		for k, v := range expected {
			if !owned(k) {
				continue
			}
			if st, got, _ := nodes[0].rep.VGet(k); st != wire.VStateLive || got != v {
				return false
			}
		}
		for _, k := range deleted {
			if !owned(k) {
				continue
			}
			if st, _, _ := nodes[0].rep.VGet(k); st != wire.VStateTomb {
				return false
			}
		}
		return true
	})

	// The whole cluster agrees through the client.
	for k, v := range expected {
		got, found, err := c.Get(k)
		if err != nil || !found || got != v {
			t.Fatalf("converged get %d: %d,%v,%v want %d,true", k, got, found, err, v)
		}
	}
	for _, k := range deleted {
		if _, found, err := c.Get(k); err != nil || found {
			t.Fatalf("deleted key %d still visible (found=%v err=%v)", k, found, err)
		}
	}

	st := nodes[0].rep.ReplicaStats()
	if st.EntriesApplied == 0 {
		t.Error("restarted node applied no streamed entries")
	}
	// The lag gauge must drain to zero even though node 0 owns only a
	// subset of the keyspace (lag counts streamed entries, not applied).
	waitFor(t, 5*time.Second, "replica lag to drain", func() bool {
		return nodes[0].r.MaxLag() == 0
	})
	m := c.MetricsSnapshot()
	if m.ReadErrors == 0 {
		t.Error("no per-replica read errors recorded despite a dead node")
	}
	var b strings.Builder
	if err := nodes[0].r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mccuckoo_peer_replica_lag", "mccuckoo_peer_entries_applied_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("replicator metrics missing %s", want)
		}
	}
	b.Reset()
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mccuckoo_cluster_read_repairs_total") {
		t.Error("client metrics missing mccuckoo_cluster_read_repairs_total")
	}
}

// TestClusterReadRepair creates sequence skew directly (no replicators
// running, so only the client can heal) and verifies a read answers from
// the newest copy and pushes it back to the stale replica — for both live
// values and tombstones.
func TestClusterReadRepair(t *testing.T) {
	addrs := freeAddrs(t, 2)
	a := startTestNode(t, addrs[0], addrs, nodeOpts{noReplicator: true})
	b := startTestNode(t, addrs[1], addrs, nodeOpts{noReplicator: true})
	defer a.stop()
	defer b.stop()

	var ctr atomic.Uint64
	c, err := New(Config{
		Nodes:     addrs,
		Replicas:  2,
		Seed:      testRingSeed,
		SeqSource: func() uint64 { return ctr.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = 12345
	if err := c.Put(key, 100); err != nil {
		t.Fatal(err)
	}

	// Skew: a newer value lands on node A only (as if A alone survived a
	// partition during the write).
	wa, err := wire.Dial(wire.ClientConfig{Addr: addrs[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer wa.Close()
	if _, err := wa.Replicate(1000, []wire.Entry{{Seq: 1000, Op: wire.OpPut, Key: key, Value: 999}}); err != nil {
		t.Fatal(err)
	}

	v, found, err := c.Get(key)
	if err != nil || !found || v != 999 {
		t.Fatalf("get after skew: %d,%v,%v want 999,true", v, found, err)
	}
	if got := c.MetricsSnapshot().Repairs; got != 1 {
		t.Fatalf("repairs = %d, want 1", got)
	}
	// The stale replica now holds the winning copy at the winning seq.
	if st, bv, seq := b.rep.VGet(key); st != wire.VStateLive || bv != 999 || seq != 1000 {
		t.Fatalf("repaired replica: state=%d value=%d seq=%d, want live 999 @1000", st, bv, seq)
	}

	// Tombstones repair the same way.
	if _, err := wa.Replicate(2000, []wire.Entry{{Seq: 2000, Op: wire.OpDel, Key: key}}); err != nil {
		t.Fatal(err)
	}
	if _, found, err := c.Get(key); err != nil || found {
		t.Fatalf("get after skewed delete: found=%v err=%v", found, err)
	}
	if got := c.MetricsSnapshot().Repairs; got != 2 {
		t.Fatalf("repairs = %d, want 2", got)
	}
	if st, _, seq := b.rep.VGet(key); st != wire.VStateTomb || seq != 2000 {
		t.Fatalf("repaired tombstone: state=%d seq=%d, want tomb @2000", st, seq)
	}
}

// TestClusterBootstrapFullSync starts a node from nothing against a peer
// whose op log no longer reaches back to sequence zero: the subscription
// must fall back to a full state dump, after which both nodes (each owning
// every key at R=2 over two nodes) carry identical state digests.
func TestClusterBootstrapFullSync(t *testing.T) {
	addrs := freeAddrs(t, 2)
	// Node A's tiny op log guarantees the 100 writes below overrun it.
	a := startTestNode(t, addrs[0], addrs, nodeOpts{oplogSize: 8})
	defer a.stop()

	var ctr atomic.Uint64
	c, err := New(Config{
		Nodes:     addrs,
		Replicas:  2,
		Seed:      testRingSeed,
		SeqSource: func() uint64 { return ctr.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Node B is down; W=1 keeps the writes available on A alone.
	for k := uint64(1); k <= 100; k++ {
		if err := c.Put(k, k*3); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}

	b := startTestNode(t, addrs[1], addrs, nodeOpts{})
	defer b.stop()
	waitFor(t, 10*time.Second, "bootstrap node to converge", func() bool {
		return b.rep.Digest() == a.rep.Digest() && b.rep.ReplicaStats().TrackedKeys == 100
	})

	for k := uint64(1); k <= 100; k++ {
		if st, v, _ := b.rep.VGet(k); st != wire.VStateLive || v != k*3 {
			t.Fatalf("bootstrapped key %d: state=%d value=%d", k, st, v)
		}
	}
	if got := a.rep.ReplicaStats().FullSyncs; got < 1 {
		t.Errorf("peer served %d full syncs, want >= 1", got)
	}
	if got := b.r.peerStates[addrs[0]].fullSyncs.Load(); got < 1 {
		t.Errorf("bootstrap node recorded %d full syncs, want >= 1", got)
	}
}
