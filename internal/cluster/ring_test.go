package cluster

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("10.0.0.%d:9053", i+1)
	}
	return nodes
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 1); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewRing(testNodes(65), 0, 1); err == nil {
		t.Fatal(">64 nodes accepted")
	}
	dup := []string{"a:1", "b:1", "a:1"}
	if _, err := NewRing(dup, 0, 1); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// Same seed + same node set (in any order) must yield the identical replica
// assignment for every key — placement is pure configuration, so a client
// and a node that each build their own ring must always agree.
func TestRingDeterministicAcrossNodeOrder(t *testing.T) {
	nodes := testNodes(7)
	const seed = 0x9e3779b97f4a7c15

	ref, err := NewRing(nodes, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		r, err := NewRing(shuffled, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		for key := uint64(1); key <= 10_000; key++ {
			var a, b [8]string
			want := ref.Replicas(key, 3, a[:0])
			got := r.Replicas(key, 3, b[:0])
			if len(want) != len(got) {
				t.Fatalf("trial %d key %d: %v vs %v", trial, key, want, got)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d key %d: replica %d is %s, want %s", trial, key, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRingReplicasDistinctAndOwned(t *testing.T) {
	r, err := NewRing(testNodes(5), 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(1); key <= 2_000; key++ {
		var buf [8]string
		reps := r.Replicas(key, 3, buf[:0])
		if len(reps) != 3 {
			t.Fatalf("key %d: %d replicas, want 3", key, len(reps))
		}
		seen := map[string]bool{}
		for _, a := range reps {
			if seen[a] {
				t.Fatalf("key %d: duplicate replica %s", key, a)
			}
			seen[a] = true
			if !r.Owns(a, key, 3) {
				t.Fatalf("key %d: Owns(%s) disagrees with Replicas", key, a)
			}
		}
		if r.Owns("nope:1", key, 3) {
			t.Fatalf("key %d: Owns accepted a non-member", key)
		}
	}
	// Asking for more replicas than nodes returns every node once.
	var buf [8]string
	if got := r.Replicas(7, 100, buf[:0]); len(got) != 5 {
		t.Fatalf("over-asked replicas: got %d, want 5", len(got))
	}
}

// Consistent hashing's defining property: growing an N-node ring by one
// node may only move keys onto the new node — a key's primary never moves
// between two old nodes — and the moved fraction stays near 1/(N+1).
func TestRingRebalanceBounds(t *testing.T) {
	const samples = 20_000
	for _, n := range []int{4, 8, 16} {
		for seed := uint64(1); seed <= 3; seed++ {
			nodes := testNodes(n)
			before, err := NewRing(nodes, 0, seed)
			if err != nil {
				t.Fatal(err)
			}
			grown := append(append([]string(nil), nodes...), "10.0.1.1:9053")
			after, err := NewRing(grown, 0, seed)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for key := uint64(1); key <= samples; key++ {
				var a, b [8]string
				oldPrimary := before.Replicas(key, 1, a[:0])[0]
				newPrimary := after.Replicas(key, 1, b[:0])[0]
				if oldPrimary == newPrimary {
					continue
				}
				if newPrimary != "10.0.1.1:9053" {
					t.Fatalf("n=%d seed=%d key %d: primary moved %s -> %s, neither the new node",
						n, seed, key, oldPrimary, newPrimary)
				}
				moved++
			}
			frac := float64(moved) / samples
			ideal := 1.0 / float64(n+1)
			// With 128 vnodes the load split wobbles around the ideal; allow
			// a generous factor-of-two band plus an absolute floor so small
			// fractions don't trip it.
			if frac > 2*ideal+0.02 {
				t.Fatalf("n=%d seed=%d: %.3f of keys moved, ideal %.3f", n, seed, frac, ideal)
			}
			if moved == 0 {
				t.Fatalf("n=%d seed=%d: no keys moved to the new node", n, seed)
			}
		}
	}
}

// The per-node key share should be near 1/N: virtual nodes smooth the split.
func TestRingBalance(t *testing.T) {
	const n, samples = 8, 40_000
	r, err := NewRing(testNodes(n), 0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for key := uint64(1); key <= samples; key++ {
		var buf [8]string
		counts[r.Replicas(key, 1, buf[:0])[0]]++
	}
	ideal := samples / n
	for addr, got := range counts {
		if got < ideal/2 || got > ideal*2 {
			t.Fatalf("node %s owns %d of %d keys (ideal %d): imbalance beyond 2x", addr, got, samples, ideal)
		}
	}
}
