// Package cluster is the client-side cluster tier over the wire protocol
// (DESIGN.md §11): a deterministic consistent-hash ring maps every key to R
// replica nodes, Client fans reads and writes across those replicas with
// write quorums and read-repair, and Replicator keeps a node converged with
// its peers through op-log subscriptions. The paper's multi-copy idea one
// level up: key copies spread across nodes instead of buckets, so losing
// one process loses no keys.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"mccuckoo/internal/hashutil"
)

// DefaultVNodes is the virtual-node count per physical node (128 points on
// the ring per node). More virtual nodes smooth the keyspace split at the
// cost of a larger ring; 128 keeps the imbalance within a few percent for
// the fleet sizes mcserved targets.
const DefaultVNodes = 128

// Ring is a seeded consistent-hash ring with virtual nodes. Construction is
// deterministic: the same node set (in any order), seed, and virtual-node
// count always produce the identical ring, so every client and every node
// in a cluster independently computes the same key placement — there is no
// membership protocol to agree on, only configuration.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	nodes  []string
	vnodes int
	seed   uint64
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the [0, 2^64) circle owned
// by a physical node.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds the ring over the given node addresses. Duplicates are
// rejected; order does not matter (nodes are sorted first).
func NewRing(nodes []string, vnodes int, seed uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	if len(nodes) > 64 {
		// Replica selection tracks visited nodes in a 64-bit bitmap; the
		// fleets this repo targets are far smaller.
		return nil, fmt.Errorf("cluster: ring supports at most 64 nodes, got %d", len(nodes))
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node %q", sorted[i])
		}
	}
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		seed:   seed,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for ni, addr := range sorted {
		b := []byte(addr)
		for v := 0; v < vnodes; v++ {
			h := hashutil.BOB64(b, seed^hashutil.Mix64(uint64(v)+1))
			r.points = append(r.points, ringPoint{hash: h, node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Identical positions (vanishingly rare) tie-break by node index so
		// the order is still deterministic.
		return a.node < b.node
	})
	return r, nil
}

// Nodes returns the ring's node addresses in sorted order. The slice is
// shared; do not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// point maps a key onto the circle.
//
//mcvet:deterministic
func (r *Ring) point(key uint64) uint64 {
	return hashutil.BOB64Key(key, r.seed)
}

// Replicas appends the addresses of the n distinct nodes responsible for
// key — the first n distinct owners walking clockwise from the key's point
// — to dst and returns it. When n exceeds the node count every node is
// returned. The first address is the key's primary.
//
//mcvet:deterministic
func (r *Ring) Replicas(key uint64, n int, dst []string) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return dst
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= r.point(key)
	})
	var seen uint64 // node-index bitmap; rings are far smaller than 64 nodes
	for i := 0; i < len(r.points) && n > 0; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen&(1<<uint(p.node)) != 0 {
			continue
		}
		seen |= 1 << uint(p.node)
		dst = append(dst, r.nodes[p.node])
		n--
	}
	return dst
}

// Owns reports whether addr is one of the n replicas for key.
//
//mcvet:deterministic
func (r *Ring) Owns(addr string, key uint64, n int) bool {
	var buf [8]string
	for _, a := range r.Replicas(key, n, buf[:0]) {
		if a == addr {
			return true
		}
	}
	return false
}
