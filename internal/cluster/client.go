package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo/internal/wire"
)

// ErrNoQuorum is wrapped by write errors when fewer than WriteQuorum
// replicas acknowledged. Some replicas may still have applied the write —
// a later read repairs the rest.
var ErrNoQuorum = errors.New("cluster: write quorum not reached")

// ErrAllReplicasFailed is wrapped by read errors when every consulted
// replica failed at the transport or server level. A read that reaches at
// least one replica succeeds (possibly returning not-found).
var ErrAllReplicasFailed = errors.New("cluster: all replicas failed")

// Config configures a cluster Client. Nodes is required; every other field
// has a usable zero value.
type Config struct {
	// Nodes lists every node address in the cluster. All clients and all
	// nodes must be configured with the same set (order-insensitive), the
	// same Seed, and the same VNodes — placement is pure configuration.
	Nodes []string

	// Replicas is R, the copies kept of each key (default 2, capped at the
	// node count). The cluster tolerates R-1 node losses with zero failed
	// reads.
	Replicas int

	// WriteQuorum is W, the acknowledgements a write needs to succeed
	// (default 1, capped at Replicas). W=1 keeps writes available while a
	// node is down; the op-log catch-up and read-repair propagate the
	// copies the write could not deliver itself.
	WriteQuorum int

	// ReadFanout is how many replicas a read consults (default Replicas).
	// Consulting all R replicas makes every read a repair opportunity;
	// lowering it trades freshness detection for round trips.
	ReadFanout int

	// VNodes and Seed parameterize the ring (defaults DefaultVNodes, 0).
	VNodes int
	Seed   uint64

	// NodeID distinguishes this writer's sequence numbers from other
	// writers in the same millisecond (8 bits used).
	NodeID uint64

	// Wire is the per-node client template; Addr is overridden per node.
	Wire wire.ClientConfig

	// SeqSource overrides the write sequence-number source, for
	// deterministic tests. Sequence numbers must be strictly increasing
	// per client; the default is a hybrid clock (wall millis in the high
	// bits, NodeID below, a counter in the low bits).
	SeqSource func() uint64
}

// Client fans operations across a cluster of mcserved nodes. Writes are
// pushed to all R replicas of the key with a write quorum; reads consult
// the replicas in ring order, answer from the newest copy, and push that
// copy back to any stale replica (read-repair). All methods are safe for
// concurrent use.
type Client struct {
	cfg  Config
	ring *Ring
	// peers is fixed at construction (one pooled wire client per node) and
	// only read afterwards, so it needs no lock.
	peers map[string]*peer

	lastSeq atomic.Uint64
	seqSrc  func() uint64

	reads          atomic.Int64
	readErrors     atomic.Int64
	repairs        atomic.Int64
	writes         atomic.Int64
	quorumFailures atomic.Int64
}

// peer is one node's wire client plus its round-trip counter.
type peer struct {
	wc    *wire.Client
	trips atomic.Int64
}

// New validates cfg, builds the ring, and dials nothing (wire clients
// connect lazily).
func New(cfg Config) (*Client, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(ring.Nodes()) {
		cfg.Replicas = len(ring.Nodes())
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = 1
	}
	if cfg.WriteQuorum > cfg.Replicas {
		return nil, fmt.Errorf("cluster: write quorum %d exceeds replica count %d", cfg.WriteQuorum, cfg.Replicas)
	}
	if cfg.ReadFanout <= 0 || cfg.ReadFanout > cfg.Replicas {
		cfg.ReadFanout = cfg.Replicas
	}
	c := &Client{cfg: cfg, ring: ring, peers: make(map[string]*peer, len(ring.Nodes()))}
	for _, addr := range ring.Nodes() {
		wcfg := cfg.Wire
		wcfg.Addr = addr
		wc, err := wire.Dial(wcfg)
		if err != nil {
			return nil, err
		}
		c.peers[addr] = &peer{wc: wc}
	}
	c.seqSrc = cfg.SeqSource
	if c.seqSrc == nil {
		id := (cfg.NodeID & 0xff) << 14
		c.seqSrc = func() uint64 {
			return uint64(time.Now().UnixMilli())<<22 | id
		}
	}
	return c, nil
}

// Close closes every per-node wire client.
func (c *Client) Close() error {
	for _, p := range c.peers {
		p.wc.Close()
	}
	return nil
}

// Ring returns the client's placement ring.
func (c *Client) Ring() *Ring { return c.ring }

// nextSeq issues a strictly increasing sequence number: the hybrid-clock
// candidate, bumped past the previously issued one when the clock has not
// advanced (or ran backwards).
func (c *Client) nextSeq() uint64 {
	for {
		prev := c.lastSeq.Load()
		cand := c.seqSrc()
		if cand <= prev {
			cand = prev + 1
		}
		if c.lastSeq.CompareAndSwap(prev, cand) {
			return cand
		}
	}
}

// replicasOf returns key's replica addresses in ring order.
func (c *Client) replicasOf(key uint64) []string {
	var buf [8]string
	return c.ring.Replicas(key, c.cfg.Replicas, buf[:0])
}

// Put writes key/value to all replicas, succeeding once WriteQuorum
// replicas acknowledged.
func (c *Client) Put(key, value uint64) error {
	return c.write(wire.Entry{Op: wire.OpPut, Key: key, Value: value})
}

// Del deletes key on all replicas (leaving a tombstone), succeeding once
// WriteQuorum replicas acknowledged.
func (c *Client) Del(key uint64) error {
	return c.write(wire.Entry{Op: wire.OpDel, Key: key})
}

func (c *Client) write(e wire.Entry) error {
	c.writes.Add(1)
	e.Seq = c.nextSeq()
	replicas := c.replicasOf(e.Key)
	ents := []wire.Entry{e}
	acks := 0
	var firstErr error
	for _, ok := range c.fanPush(replicas, e.Seq, ents, &firstErr) {
		if ok {
			acks++
		}
	}
	if acks >= c.cfg.WriteQuorum {
		return nil
	}
	c.quorumFailures.Add(1)
	return fmt.Errorf("%w (%d/%d acks for key %d): %v", ErrNoQuorum, acks, c.cfg.WriteQuorum, e.Key, firstErr)
}

// fanPush sends one REPLICATE push to every replica concurrently. oks[i]
// reports whether replicas[i] durably holds the entries (applied or
// already-newer); *firstErr receives one representative failure.
func (c *Client) fanPush(replicas []string, head uint64, ents []wire.Entry, firstErr *error) []bool {
	oks := make([]bool, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, addr := range replicas {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			p.trips.Add(1)
			statuses, err := p.wc.Replicate(head, ents)
			if err != nil {
				errs[i] = err
				return
			}
			for _, st := range statuses {
				if st == wire.ApplyFailed {
					errs[i] = errors.New("replica table full")
					return
				}
			}
			oks[i] = true
		}(i, c.peers[addr])
	}
	wg.Wait()
	if firstErr != nil {
		for _, err := range errs {
			if err != nil {
				*firstErr = err
				break
			}
		}
	}
	return oks
}

// vread is one replica's VGET answer.
type vread struct {
	state byte
	value uint64
	seq   uint64
	err   error
}

// Get reads key: all consulted replicas are queried concurrently, the
// newest copy wins, and any stale (or missing) replica that answered is
// repaired with the winning copy before Get returns. Get fails only when
// every consulted replica failed.
func (c *Client) Get(key uint64) (value uint64, found bool, err error) {
	c.reads.Add(1)
	var buf [8]string
	replicas := c.ring.Replicas(key, c.cfg.ReadFanout, buf[:0])
	reads := make([]vread, len(replicas))
	var wg sync.WaitGroup
	for i, addr := range replicas {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			p.trips.Add(1)
			r := &reads[i]
			r.state, r.value, r.seq, r.err = p.wc.VGet(key)
		}(i, c.peers[addr])
	}
	wg.Wait()

	best := -1
	answered := 0
	for i := range reads {
		if reads[i].err != nil {
			c.readErrors.Add(1)
			continue
		}
		answered++
		if best < 0 || reads[i].seq > reads[best].seq {
			best = i
		}
	}
	if answered == 0 {
		return 0, false, fmt.Errorf("%w (key %d): %v", ErrAllReplicasFailed, key, reads[0].err)
	}
	win := reads[best]
	c.repair(key, replicas, reads, win)
	if win.state == wire.VStateLive {
		return win.value, true, nil
	}
	return 0, false, nil
}

// repair pushes the winning copy to every replica that answered with an
// older one. Repairs are synchronous — the read returns only after the
// disagreeing replicas converged — and best-effort: a failed repair is not
// a read failure.
func (c *Client) repair(key uint64, replicas []string, reads []vread, win vread) {
	if win.state == wire.VStateMissing {
		return // nobody has ever seen the key; nothing to propagate
	}
	ent := wire.Entry{Seq: win.seq, Key: key}
	switch win.state {
	case wire.VStateLive:
		ent.Op = wire.OpPut
		ent.Value = win.value
	case wire.VStateTomb:
		ent.Op = wire.OpDel
	}
	var stale []string
	for i := range reads {
		if reads[i].err != nil {
			continue
		}
		if reads[i].seq < win.seq || reads[i].state == wire.VStateMissing {
			stale = append(stale, replicas[i])
		}
	}
	if len(stale) == 0 {
		return
	}
	c.repairs.Add(int64(len(stale)))
	c.fanPush(stale, win.seq, []wire.Entry{ent}, nil)
}

// PutBatch writes every pair, grouping the per-replica pushes into one
// REPLICATE frame per node. It fails (with the first per-key error) if any
// key misses its write quorum; all other keys are still written.
func (c *Client) PutBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		panic("cluster: PutBatch called with mismatched key/value lengths")
	}
	ents := make([]wire.Entry, len(keys))
	for i, k := range keys {
		ents[i] = wire.Entry{Seq: c.nextSeq(), Op: wire.OpPut, Key: k, Value: values[i]}
	}
	return c.writeBatch(ents)
}

// DelBatch deletes every key, grouped like PutBatch.
func (c *Client) DelBatch(keys []uint64) error {
	ents := make([]wire.Entry, len(keys))
	for i, k := range keys {
		ents[i] = wire.Entry{Seq: c.nextSeq(), Op: wire.OpDel, Key: k}
	}
	return c.writeBatch(ents)
}

// writeBatch distributes entries to their replicas, one push per node, and
// verifies every entry reached its write quorum.
func (c *Client) writeBatch(ents []wire.Entry) error {
	c.writes.Add(int64(len(ents)))
	perNode := make(map[string][]wire.Entry)
	perNodeIdx := make(map[string][]int)
	for i := range ents {
		for _, addr := range c.replicasOf(ents[i].Key) {
			perNode[addr] = append(perNode[addr], ents[i])
			perNodeIdx[addr] = append(perNodeIdx[addr], i)
		}
	}
	acks := make([]int, len(ents))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for addr := range perNode {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			p := c.peers[addr]
			p.trips.Add(1)
			statuses, err := p.wc.Replicate(ents[len(ents)-1].Seq, perNode[addr])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for j, st := range statuses {
				if st == wire.ApplyFailed {
					if firstErr == nil {
						firstErr = errors.New("replica table full")
					}
					continue
				}
				acks[perNodeIdx[addr][j]]++
			}
		}(addr)
	}
	wg.Wait()
	for i, n := range acks {
		if n < c.cfg.WriteQuorum {
			c.quorumFailures.Add(1)
			return fmt.Errorf("%w (%d/%d acks for key %d): %v", ErrNoQuorum, n, c.cfg.WriteQuorum, ents[i].Key, firstErr)
		}
	}
	return nil
}

// GetBatch reads every key with the same replica fan-out and read-repair
// as Get, a bounded number of keys in flight at once.
func (c *Client) GetBatch(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			values[i], found[i], errs[i] = c.Get(k)
		}(i, k)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return values, found, e
		}
	}
	return values, found, nil
}

// Metrics is a snapshot of the client's counters.
type Metrics struct {
	Reads          int64
	ReadErrors     int64
	Repairs        int64
	Writes         int64
	QuorumFailures int64
	// PeerTrips counts round trips per node address.
	PeerTrips map[string]int64
}

// MetricsSnapshot returns the current counter values.
func (c *Client) MetricsSnapshot() Metrics {
	m := Metrics{
		Reads:          c.reads.Load(),
		ReadErrors:     c.readErrors.Load(),
		Repairs:        c.repairs.Load(),
		Writes:         c.writes.Load(),
		QuorumFailures: c.quorumFailures.Load(),
		PeerTrips:      make(map[string]int64, len(c.peers)),
	}
	for addr, p := range c.peers {
		m.PeerTrips[addr] = p.trips.Load()
	}
	return m
}

// WritePrometheus writes the cluster client's metrics in Prometheus text
// exposition under the mccuckoo_cluster_ prefix.
func (c *Client) WritePrometheus(w io.Writer) error {
	m := c.MetricsSnapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	simple := func(name, help string, v int64) {
		pf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	simple("mccuckoo_cluster_reads_total", "Cluster reads issued.", m.Reads)
	simple("mccuckoo_cluster_read_errors_total", "Per-replica read failures.", m.ReadErrors)
	simple("mccuckoo_cluster_read_repairs_total", "Stale replicas repaired by reads.", m.Repairs)
	simple("mccuckoo_cluster_writes_total", "Cluster writes issued.", m.Writes)
	simple("mccuckoo_cluster_quorum_failures_total", "Writes that missed their quorum.", m.QuorumFailures)
	pf("# HELP mccuckoo_cluster_peer_trips_total Round trips per peer.\n# TYPE mccuckoo_cluster_peer_trips_total counter\n")
	addrs := make([]string, 0, len(m.PeerTrips))
	for addr := range m.PeerTrips {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		pf("mccuckoo_cluster_peer_trips_total{peer=%q} %d\n", addr, m.PeerTrips[addr])
	}
	return err
}
