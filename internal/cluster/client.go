package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/telemetry"
	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

// ErrNoQuorum is wrapped by write errors when fewer than WriteQuorum
// replicas acknowledged. Some replicas may still have applied the write —
// a later read repairs the rest.
var ErrNoQuorum = errors.New("cluster: write quorum not reached")

// ErrAllReplicasFailed is wrapped by read errors when every consulted
// replica failed at the transport or server level. A read that reaches at
// least one replica succeeds (possibly returning not-found).
var ErrAllReplicasFailed = errors.New("cluster: all replicas failed")

// errBreakerOpen marks a replica skipped because its breaker was open: the
// peer failed enough consecutive requests that the client stops paying its
// timeout until a half-open probe succeeds.
var errBreakerOpen = errors.New("cluster: peer breaker open")

// errFanDeadline marks replicas that had not answered when the per-op
// fan-out deadline expired; their round trips keep running in the
// background and still feed the breakers.
var errFanDeadline = errors.New("cluster: fan-out deadline expired")

// Config configures a cluster Client. Nodes is required; every other field
// has a usable zero value.
type Config struct {
	// Nodes lists every node address in the cluster. All clients and all
	// nodes must be configured with the same set (order-insensitive), the
	// same Seed, and the same VNodes — placement is pure configuration.
	Nodes []string

	// Replicas is R, the copies kept of each key (default 2, capped at the
	// node count). The cluster tolerates R-1 node losses with zero failed
	// reads.
	Replicas int

	// WriteQuorum is W, the acknowledgements a write needs to succeed
	// (default 1, capped at Replicas). W=1 keeps writes available while a
	// node is down; the op-log catch-up and read-repair propagate the
	// copies the write could not deliver itself.
	WriteQuorum int

	// ReadFanout is how many replicas a read consults (default Replicas).
	// Consulting all R replicas makes every read a repair opportunity;
	// lowering it trades freshness detection for round trips.
	ReadFanout int

	// VNodes and Seed parameterize the ring (defaults DefaultVNodes, 0).
	VNodes int
	Seed   uint64

	// NodeID distinguishes this writer's sequence numbers from other
	// writers in the same millisecond (8 bits used).
	NodeID uint64

	// OpTimeout bounds one fan-out (a write push, a read's VGET round, a
	// repair push) end to end (default 5s). A hung peer costs at most this
	// long; replicas that answered within the deadline still satisfy the
	// quorum, and the laggard's reply feeds its breaker when it arrives.
	OpTimeout time.Duration

	// BreakerFailures is how many consecutive transport failures trip a
	// peer's breaker open (default 5). While open, requests to the peer
	// are skipped immediately instead of waiting out their timeouts.
	BreakerFailures int

	// BreakerProbe is the base interval between half-open probes of an
	// open breaker (default 500ms), jittered ±50% from a stream seeded by
	// Seed and the peer address.
	BreakerProbe time.Duration

	// Wire is the per-node client template; Addr is overridden per node.
	// Wire.Dial is where the fault-injection layer (internal/netchaos)
	// interposes for chaos tests.
	Wire wire.ClientConfig

	// SeqSource overrides the write sequence-number source, for
	// deterministic tests. Sequence numbers must be strictly increasing
	// per client; the default is a hybrid clock (wall millis in the high
	// bits, NodeID below, a counter in the low bits).
	SeqSource func() uint64

	// Trace, when non-nil, records client-side spans: one root per Get/
	// Put/Del (head-sampled by the recorder) with a replica_rtt child per
	// fan-out round trip, and the sampled context rides the wire so servers
	// continue the same trace. Nil disables tracing at zero cost.
	Trace *trace.Recorder
}

// Client fans operations across a cluster of mcserved nodes. Writes are
// pushed to all R replicas of the key with a write quorum; reads consult
// the replicas in ring order, answer from the newest copy, and push that
// copy back to any stale replica (read-repair). All methods are safe for
// concurrent use.
//
//mcvet:lifecycle
type Client struct {
	cfg  Config
	ring *Ring
	// peers is fixed at construction (one pooled wire client per node) and
	// only read afterwards, so it needs no lock.
	peers map[string]*peer

	lastSeq atomic.Uint64
	seqSrc  func() uint64
	tr      *trace.Recorder

	reads          atomic.Int64
	readErrors     atomic.Int64
	repairs        atomic.Int64
	writes         atomic.Int64
	quorumFailures atomic.Int64
	degradedReads  atomic.Int64

	// ackSkew is the quorum ack-latency histogram: for every multi-replica
	// push, each durable ack observes its delay (ns) behind the fan-out's
	// first ack — 0 for the winner. Under W>1 this distribution IS the
	// consistency window: a read landing inside it can see replicas
	// disagree.
	ackSkew telemetry.Hist
}

// peer is one node's wire client plus its health tracking.
type peer struct {
	wc *wire.Client
	br *breaker
	// hash identifies the peer in trace spans (trace.PeerHash of the addr).
	hash  uint32
	trips atomic.Int64
}

// call performs one round trip against the peer, feeding the breaker with
// the transport outcome. fn returns the transport error only; server-side
// apply failures are the caller's to interpret and do not open the breaker.
func (p *peer) call(fn func(wc *wire.Client) error) error {
	p.trips.Add(1)
	err := fn(p.wc)
	if err != nil {
		p.br.onFailure()
	} else {
		p.br.onSuccess()
	}
	return err
}

// New validates cfg, builds the ring, and dials nothing (wire clients
// connect lazily).
func New(cfg Config) (*Client, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(ring.Nodes()) {
		cfg.Replicas = len(ring.Nodes())
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = 1
	}
	if cfg.WriteQuorum > cfg.Replicas {
		return nil, fmt.Errorf("cluster: write quorum %d exceeds replica count %d", cfg.WriteQuorum, cfg.Replicas)
	}
	if cfg.ReadFanout <= 0 || cfg.ReadFanout > cfg.Replicas {
		cfg.ReadFanout = cfg.Replicas
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 5
	}
	if cfg.BreakerProbe <= 0 {
		cfg.BreakerProbe = 500 * time.Millisecond
	}
	c := &Client{cfg: cfg, ring: ring, peers: make(map[string]*peer, len(ring.Nodes()))}
	for _, addr := range ring.Nodes() {
		wcfg := cfg.Wire
		wcfg.Addr = addr
		wc, err := wire.Dial(wcfg)
		if err != nil {
			return nil, err
		}
		c.peers[addr] = &peer{
			wc:   wc,
			br:   newBreaker(cfg.BreakerFailures, cfg.BreakerProbe, breakerSeed(cfg.Seed, addr)),
			hash: trace.PeerHash(addr),
		}
	}
	c.tr = cfg.Trace
	c.seqSrc = cfg.SeqSource
	if c.seqSrc == nil {
		id := (cfg.NodeID & 0xff) << 14
		c.seqSrc = func() uint64 {
			return uint64(time.Now().UnixMilli())<<22 | id
		}
	}
	return c, nil
}

// Close closes every per-node wire client.
func (c *Client) Close() error {
	for _, p := range c.peers {
		p.wc.Close()
	}
	return nil
}

// Ring returns the client's placement ring.
func (c *Client) Ring() *Ring { return c.ring }

// nextSeq issues a strictly increasing sequence number: the hybrid-clock
// candidate, bumped past the previously issued one when the clock has not
// advanced (or ran backwards).
func (c *Client) nextSeq() uint64 {
	for {
		prev := c.lastSeq.Load()
		cand := c.seqSrc()
		if cand <= prev {
			cand = prev + 1
		}
		if c.lastSeq.CompareAndSwap(prev, cand) {
			return cand
		}
	}
}

// replicasOf returns key's replica addresses in ring order.
func (c *Client) replicasOf(key uint64) []string {
	var buf [8]string
	return c.ring.Replicas(key, c.cfg.Replicas, buf[:0])
}

// Put writes key/value to all replicas, succeeding once WriteQuorum
// replicas acknowledged.
func (c *Client) Put(key, value uint64) error {
	return c.write(wire.Entry{Op: wire.OpPut, Key: key, Value: value})
}

// Del deletes key on all replicas (leaving a tombstone), succeeding once
// WriteQuorum replicas acknowledged.
func (c *Client) Del(key uint64) error {
	return c.write(wire.Entry{Op: wire.OpDel, Key: key})
}

func (c *Client) write(e wire.Entry) error {
	c.writes.Add(1)
	e.Seq = c.nextSeq()
	root := c.tr.Start(c.tr.Begin(), trace.KindClientOp)
	root.Op, root.Key = e.Op, hashutil.Mix64(e.Key)
	replicas := c.replicasOf(e.Key)
	acks, err := c.fanPush(replicas, e.Seq, []wire.Entry{e}, c.cfg.WriteQuorum, root)
	root.Finish()
	if acks >= c.cfg.WriteQuorum {
		return nil
	}
	c.quorumFailures.Add(1)
	return fmt.Errorf("%w (%d/%d acks for key %d): %w", ErrNoQuorum, acks, c.cfg.WriteQuorum, e.Key, err)
}

// fanPush sends one REPLICATE push to every replica concurrently, skipping
// peers with an open breaker. It returns as soon as need replicas
// acknowledged durably (applied or already-newer); need <= 0 waits for
// every launched push. Replicas still silent when OpTimeout expires are
// abandoned — their goroutines only write to a buffered channel, the
// breaker, and the ack-skew histogram, so a hung peer costs one deadline,
// never a stall. The returned error joins every per-replica failure
// observed, so a multi-peer outage is diagnosable from one log line.
//
// root is the caller's span, passed BY VALUE: each replica goroutine opens
// a replica_rtt child from its own copy, so an abandoned goroutine never
// races the caller's Finish. Durable acks of a multi-replica push feed the
// ack-skew histogram even when they arrive after the quorum returned — the
// consistency window is exactly the part the caller no longer waits for.
func (c *Client) fanPush(replicas []string, head uint64, ents []wire.Entry, need int, root trace.Span) (int, error) {
	ch := make(chan error, len(replicas))
	launched := 0
	var errs []error
	var firstAck atomic.Int64
	multi := len(replicas) > 1
	for _, addr := range replicas {
		p := c.peers[addr]
		if !p.br.allow() {
			errs = append(errs, fmt.Errorf("%w: %s", errBreakerOpen, addr))
			continue
		}
		launched++
		go func(p *peer, addr string) {
			rsp := root.StartChild(trace.KindReplicaRTT)
			rsp.Op, rsp.Peer = wire.OpReplicate, p.hash
			var statuses []byte
			err := p.call(func(wc *wire.Client) error {
				var err error
				statuses, err = wc.ReplicateCtx(rsp.Context(), head, ents)
				return err
			})
			if err == nil {
				for _, st := range statuses {
					if st == wire.ApplyFailed {
						err = fmt.Errorf("cluster: %s: replica table full", addr)
						break
					}
				}
			}
			rsp.Finish()
			if err == nil && multi {
				now := time.Now().UnixNano()
				if firstAck.CompareAndSwap(0, now) {
					c.ackSkew.Observe(0)
				} else {
					// Observe clamps the rare negative from two CAS races.
					c.ackSkew.Observe(now - firstAck.Load())
				}
			}
			ch <- err
		}(p, addr)
	}
	acks := 0
	timer := time.NewTimer(c.cfg.OpTimeout)
	defer timer.Stop()
	for done := 0; done < launched; done++ {
		select {
		case err := <-ch:
			if err != nil {
				errs = append(errs, err)
				continue
			}
			acks++
			if need > 0 && acks >= need {
				return acks, nil
			}
		case <-timer.C:
			errs = append(errs, fmt.Errorf("%w after %v (%d/%d replies)", errFanDeadline, c.cfg.OpTimeout, done, launched))
			return acks, errors.Join(errs...)
		}
	}
	return acks, errors.Join(errs...)
}

// vread is one replica's VGET answer.
type vread struct {
	state byte
	value uint64
	seq   uint64
	err   error
}

// Get reads key: all consulted replicas are queried concurrently, the
// newest copy wins, and any stale (or missing) replica that answered is
// repaired with the winning copy before Get returns. Peers with an open
// breaker are skipped and peers still silent at OpTimeout are abandoned;
// a read that succeeds without a full fan-out counts as degraded. Get
// fails only when every consulted replica failed.
func (c *Client) Get(key uint64) (value uint64, found bool, err error) {
	c.reads.Add(1)
	root := c.tr.Start(c.tr.Begin(), trace.KindClientOp)
	root.Op, root.Key = wire.OpGet, hashutil.Mix64(key)
	defer root.Finish()
	var buf [8]string
	replicas := c.ring.Replicas(key, c.cfg.ReadFanout, buf[:0])
	reads := make([]vread, len(replicas))
	type rres struct {
		i int
		r vread
	}
	// Results travel through a buffered channel: a goroutine abandoned at
	// the deadline writes only here and to its breaker, never to state the
	// caller still reads. Each goroutine traces from its own copy of root.
	ch := make(chan rres, len(replicas))
	launched := 0
	for i, addr := range replicas {
		p := c.peers[addr]
		if !p.br.allow() {
			reads[i].err = fmt.Errorf("%w: %s", errBreakerOpen, addr)
			continue
		}
		// Overwritten on arrival; left standing for replicas that miss the
		// deadline.
		reads[i].err = fmt.Errorf("%w: %s", errFanDeadline, addr)
		launched++
		go func(i int, p *peer) {
			rsp := root.StartChild(trace.KindReplicaRTT)
			rsp.Op, rsp.Peer = wire.OpVGet, p.hash
			var r vread
			r.err = p.call(func(wc *wire.Client) error {
				var err error
				r.state, r.value, r.seq, err = wc.VGetCtx(rsp.Context(), key)
				return err
			})
			rsp.Finish()
			ch <- rres{i, r}
		}(i, p)
	}
	timer := time.NewTimer(c.cfg.OpTimeout)
	defer timer.Stop()
collect:
	for done := 0; done < launched; done++ {
		select {
		case rr := <-ch:
			reads[rr.i] = rr.r
		case <-timer.C:
			break collect
		}
	}

	best := -1
	answered := 0
	for i := range reads {
		if reads[i].err != nil {
			c.readErrors.Add(1)
			continue
		}
		answered++
		if best < 0 || reads[i].seq > reads[best].seq {
			best = i
		}
	}
	if answered == 0 {
		return 0, false, fmt.Errorf("%w (key %d): %w", ErrAllReplicasFailed, key, errors.Join(readErrsOf(reads)...))
	}
	if answered < len(replicas) {
		c.degradedReads.Add(1)
	}
	win := reads[best]
	c.repair(key, replicas, reads, win, root)
	if win.state == wire.VStateLive {
		return win.value, true, nil
	}
	return 0, false, nil
}

// readErrsOf collects the per-replica failures of a read fan-out.
func readErrsOf(reads []vread) []error {
	var errs []error
	for i := range reads {
		if reads[i].err != nil {
			errs = append(errs, reads[i].err)
		}
	}
	return errs
}

// repair pushes the winning copy to every replica that answered with an
// older one. Repairs are synchronous — the read returns only after the
// disagreeing replicas converged — and best-effort: a failed repair is not
// a read failure. The repair pushes trace as children of the read's root
// span, so a trace shows which read triggered which repair.
func (c *Client) repair(key uint64, replicas []string, reads []vread, win vread, root trace.Span) {
	if win.state == wire.VStateMissing {
		return // nobody has ever seen the key; nothing to propagate
	}
	ent := wire.Entry{Seq: win.seq, Key: key}
	switch win.state {
	case wire.VStateLive:
		ent.Op = wire.OpPut
		ent.Value = win.value
	case wire.VStateTomb:
		ent.Op = wire.OpDel
	}
	var stale []string
	for i := range reads {
		if reads[i].err != nil {
			continue
		}
		if reads[i].seq < win.seq || reads[i].state == wire.VStateMissing {
			stale = append(stale, replicas[i])
		}
	}
	if len(stale) == 0 {
		return
	}
	c.repairs.Add(int64(len(stale)))
	c.fanPush(stale, win.seq, []wire.Entry{ent}, 0, root)
}

// PutBatch writes every pair, grouping the per-replica pushes into one
// REPLICATE frame per node. It fails (with the first per-key error) if any
// key misses its write quorum; all other keys are still written.
func (c *Client) PutBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		panic("cluster: PutBatch called with mismatched key/value lengths")
	}
	ents := make([]wire.Entry, len(keys))
	for i, k := range keys {
		ents[i] = wire.Entry{Seq: c.nextSeq(), Op: wire.OpPut, Key: k, Value: values[i]}
	}
	return c.writeBatch(ents)
}

// DelBatch deletes every key, grouped like PutBatch.
func (c *Client) DelBatch(keys []uint64) error {
	ents := make([]wire.Entry, len(keys))
	for i, k := range keys {
		ents[i] = wire.Entry{Seq: c.nextSeq(), Op: wire.OpDel, Key: k}
	}
	return c.writeBatch(ents)
}

// writeBatch distributes entries to their replicas, one push per node, and
// verifies every entry reached its write quorum. Nodes with an open
// breaker are skipped; nodes silent at OpTimeout are abandoned. A quorum
// failure reports every per-node error joined. Batch pushes are untraced:
// one frame carries many keys, so no single-request span tree fits — the
// per-op path (Put/Del/Get) is the traced one.
func (c *Client) writeBatch(ents []wire.Entry) error {
	c.writes.Add(int64(len(ents)))
	perNode := make(map[string][]wire.Entry)
	perNodeIdx := make(map[string][]int)
	for i := range ents {
		for _, addr := range c.replicasOf(ents[i].Key) {
			perNode[addr] = append(perNode[addr], ents[i])
			perNodeIdx[addr] = append(perNodeIdx[addr], i)
		}
	}
	type bres struct {
		addr     string
		statuses []byte
		err      error
	}
	ch := make(chan bres, len(perNode))
	launched := 0
	var errs []error
	for addr, batch := range perNode {
		p := c.peers[addr]
		if !p.br.allow() {
			errs = append(errs, fmt.Errorf("%w: %s", errBreakerOpen, addr))
			continue
		}
		launched++
		go func(addr string, p *peer, batch []wire.Entry) {
			var statuses []byte
			err := p.call(func(wc *wire.Client) error {
				var err error
				statuses, err = wc.Replicate(batch[len(batch)-1].Seq, batch)
				return err
			})
			ch <- bres{addr, statuses, err}
		}(addr, p, batch)
	}
	acks := make([]int, len(ents))
	timer := time.NewTimer(c.cfg.OpTimeout)
	defer timer.Stop()
collect:
	for done := 0; done < launched; done++ {
		select {
		case r := <-ch:
			if r.err != nil {
				errs = append(errs, fmt.Errorf("cluster: %s: %w", r.addr, r.err))
				continue
			}
			for j, st := range r.statuses {
				if st == wire.ApplyFailed {
					errs = append(errs, fmt.Errorf("cluster: %s: replica table full (key %d)", r.addr, perNode[r.addr][j].Key))
					continue
				}
				acks[perNodeIdx[r.addr][j]]++
			}
		case <-timer.C:
			errs = append(errs, fmt.Errorf("%w after %v (%d/%d replies)", errFanDeadline, c.cfg.OpTimeout, done, launched))
			break collect
		}
	}
	joined := errors.Join(errs...)
	for i, n := range acks {
		if n < c.cfg.WriteQuorum {
			c.quorumFailures.Add(1)
			return fmt.Errorf("%w (%d/%d acks for key %d): %w", ErrNoQuorum, n, c.cfg.WriteQuorum, ents[i].Key, joined)
		}
	}
	return nil
}

// GetBatch reads every key with the same replica fan-out and read-repair
// as Get, a bounded number of keys in flight at once.
func (c *Client) GetBatch(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			values[i], found[i], errs[i] = c.Get(k)
		}(i, k)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return values, found, e
		}
	}
	return values, found, nil
}

// Metrics is a snapshot of the client's counters.
type Metrics struct {
	Reads          int64
	ReadErrors     int64
	Repairs        int64
	Writes         int64
	QuorumFailures int64
	// DegradedReads counts reads that succeeded without hearing from every
	// consulted replica (peer skipped by its breaker, failed, or silent at
	// the deadline).
	DegradedReads int64
	// PeerTrips counts round trips per node address.
	PeerTrips map[string]int64
	// BreakerOpen reports which peers' breakers are currently rejecting.
	BreakerOpen map[string]bool
	// BreakerTrips counts closed→open transitions per peer.
	BreakerTrips map[string]int64
	// BreakerSkips counts requests skipped by an open breaker per peer.
	BreakerSkips map[string]int64
	// AckSkew is the quorum ack-latency histogram (nanoseconds): each
	// durable ack of a multi-replica push observed relative to that push's
	// first ack. Its spread is the staleness window W>1 readers can see.
	AckSkew telemetry.HistSnapshot
}

// MetricsSnapshot returns the current counter values.
func (c *Client) MetricsSnapshot() Metrics {
	m := Metrics{
		Reads:          c.reads.Load(),
		ReadErrors:     c.readErrors.Load(),
		Repairs:        c.repairs.Load(),
		Writes:         c.writes.Load(),
		QuorumFailures: c.quorumFailures.Load(),
		DegradedReads:  c.degradedReads.Load(),
		PeerTrips:      make(map[string]int64, len(c.peers)),
		BreakerOpen:    make(map[string]bool, len(c.peers)),
		BreakerTrips:   make(map[string]int64, len(c.peers)),
		BreakerSkips:   make(map[string]int64, len(c.peers)),
		AckSkew:        c.ackSkew.Snapshot(),
	}
	for addr, p := range c.peers {
		m.PeerTrips[addr] = p.trips.Load()
		m.BreakerOpen[addr] = p.br.isOpen()
		m.BreakerTrips[addr] = p.br.trips.Load()
		m.BreakerSkips[addr] = p.br.skips.Load()
	}
	return m
}

// WritePrometheus writes the cluster client's metrics in Prometheus text
// exposition under the mccuckoo_cluster_ prefix.
func (c *Client) WritePrometheus(w io.Writer) error {
	m := c.MetricsSnapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	simple := func(name, help string, v int64) {
		pf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	simple("mccuckoo_cluster_reads_total", "Cluster reads issued.", m.Reads)
	simple("mccuckoo_cluster_read_errors_total", "Per-replica read failures.", m.ReadErrors)
	simple("mccuckoo_cluster_read_repairs_total", "Stale replicas repaired by reads.", m.Repairs)
	simple("mccuckoo_cluster_writes_total", "Cluster writes issued.", m.Writes)
	simple("mccuckoo_cluster_quorum_failures_total", "Writes that missed their quorum.", m.QuorumFailures)
	simple("mccuckoo_cluster_degraded_reads_total", "Reads that succeeded without a full replica fan-out.", m.DegradedReads)
	addrs := make([]string, 0, len(m.PeerTrips))
	for addr := range m.PeerTrips {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	perPeer := func(name, help, typ string, v func(addr string) int64) {
		pf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, addr := range addrs {
			pf("%s{peer=%q} %d\n", name, addr, v(addr))
		}
	}
	perPeer("mccuckoo_cluster_peer_trips_total", "Round trips per peer.", "counter",
		func(addr string) int64 { return m.PeerTrips[addr] })
	perPeer("mccuckoo_cluster_breaker_open", "1 while the peer's breaker rejects requests.", "gauge",
		func(addr string) int64 {
			if m.BreakerOpen[addr] {
				return 1
			}
			return 0
		})
	perPeer("mccuckoo_cluster_breaker_trips_total", "Breaker closed-to-open transitions per peer.", "counter",
		func(addr string) int64 { return m.BreakerTrips[addr] })
	perPeer("mccuckoo_cluster_breaker_skips_total", "Requests skipped by an open breaker per peer.", "counter",
		func(addr string) int64 { return m.BreakerSkips[addr] })
	if err != nil {
		return err
	}
	return telemetry.WriteHistogram(w, "mccuckoo_cluster_ack_skew_seconds",
		"Per-replica durable-ack delay behind a multi-replica push's first ack: the W>1 consistency window.",
		"", m.AckSkew, 1e9)
}
