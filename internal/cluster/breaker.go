package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-peer circuit breaker: consecutive failures trip it open,
// after which requests to the peer are skipped immediately instead of
// waiting out their timeouts. Once the jittered probe interval elapses a
// single request is let through (half-open); its success re-closes the
// breaker, its failure re-arms the open interval. The jitter decorrelates a
// fleet of clients probing the same recovering node and is drawn from a
// seeded splitmix64 stream, so a test's probe schedule is a pure function
// of its seed.
type breaker struct {
	threshold  int
	probeEvery time.Duration

	trips atomic.Int64 // closed→open transitions
	skips atomic.Int64 // requests skipped while open

	mu sync.Mutex
	//mcvet:guardedby mu
	state int
	//mcvet:guardedby mu
	fails int // consecutive failures while closed
	//mcvet:guardedby mu
	nextProbe time.Time
	//mcvet:guardedby mu
	rng uint64
}

// breakerSeed derives a peer's probe-jitter seed from the ring seed and
// the peer address (FNV-1a), so a test's breaker schedule reproduces.
func breakerSeed(seed uint64, addr string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h = (h ^ uint64(addr[i])) * 1099511628211
	}
	return seed ^ h
}

func newBreaker(threshold int, probeEvery time.Duration, seed uint64) *breaker {
	return &breaker{
		threshold:  threshold,
		probeEvery: probeEvery,
		rng:        seed ^ 0x9e3779b97f4a7c15,
	}
}

// next draws from the breaker's splitmix64 stream.
//
//mcvet:locked
func (b *breaker) next() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// armLocked schedules the next half-open probe: probeEvery ±50% jitter.
//
//mcvet:locked
func (b *breaker) armLocked(now time.Time) {
	jitter := time.Duration(b.next() % uint64(b.probeEvery))
	b.nextProbe = now.Add(b.probeEvery/2 + jitter)
}

// allow reports whether a request to the peer may proceed. While open it
// returns false (counting a skip) until the probe interval elapses, at
// which point exactly one caller gets true as the half-open probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.nextProbe) {
			b.skips.Add(1)
			return false
		}
		b.state = breakerHalfOpen
		return true
	default: // half-open: a probe is already in flight
		b.skips.Add(1)
		return false
	}
}

// onSuccess records a successful round trip, re-closing the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// onFailure records a failed round trip: enough consecutive failures trip
// the breaker; a failed half-open probe re-arms the open interval.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.trips.Add(1)
			b.armLocked(time.Now())
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.armLocked(time.Now())
	}
}

// isOpen reports whether the breaker is currently rejecting requests (for
// the breaker-state gauge).
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}
