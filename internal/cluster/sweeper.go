package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

// This file is the anti-entropy tier of the cluster (DESIGN.md §12): while
// read-repair heals keys that reads happen to touch and the op-log
// subscriptions heal everything a live connection can stream, divergence
// created while both were impossible (a partition that outlasted the op
// log, a missed oplog window, a lost sidecar) persists silently until a
// read lands on it. The Sweeper finds such keys proactively: it exchanges
// ring-ownership-filtered XOR digests with each peer over key ranges,
// bisects mismatched ranges until they are small enough to enumerate, and
// repairs each divergent key through the same versioned paths reads use
// (VGET to pull, REPLICATE to push).

// DigestFilter builds the ownership filter both sides of an anti-entropy
// exchange must share: a key contributes to the digest between self and a
// peer only when BOTH own it per the ring. The two directions of an
// exchange then digest the same key set, so equal digests mean converged.
func DigestFilter(ring *Ring, self string, replicas int) func(peer string, key uint64) bool {
	return func(peer string, key uint64) bool {
		return ring.Owns(peer, key, replicas) && ring.Owns(self, key, replicas)
	}
}

// SweeperConfig configures a Sweeper. Self and Nodes are required.
type SweeperConfig struct {
	// Self is this node's address as it appears in Nodes.
	Self string

	// Nodes, Replicas, VNodes, Seed parameterize the ring and must match
	// the rest of the cluster.
	Nodes    []string
	Replicas int
	VNodes   int
	Seed     uint64

	// Interval is the pause between background sweeps (default 30s).
	Interval time.Duration

	// LeafKeys is the bisection leaf size (default 128): a range holding
	// at most this many keys on both sides is reconciled key by key
	// instead of split further.
	LeafKeys int

	// MaxRanges bounds the digest round trips per peer per sweep (default
	// 1024). Ranges beyond the budget are counted as truncated — never
	// silently dropped — and picked up by the next sweep.
	MaxRanges int

	// BreakerFailures is how many consecutive failed sweeps trip a peer's
	// breaker open (default 3): a known-dead peer is then skipped — its
	// skips counted — instead of costing a dial timeout every interval.
	// BreakerProbe is the base interval between half-open retry probes of
	// an open breaker (default Interval), jittered ±50% from a stream
	// seeded by Seed and the peer address.
	BreakerFailures int
	BreakerProbe    time.Duration

	// Wire is the per-peer client template; Addr is overridden per peer.
	// Wire.Dial is where the fault-injection layer interposes.
	Wire wire.ClientConfig

	// Logf, when non-nil, receives one line per repaired key range and per
	// sweep error.
	Logf func(format string, args ...any)

	// Trace, when non-nil, records a sweep_repair root span per peer sweep
	// (keys repaired in Kicks) and propagates its context into the digest,
	// pull, and push frames — so a key repaired by anti-entropy shows up on
	// the remote node's flight recorder parented to the sweep, not as an
	// anonymous write. Nil disables tracing.
	Trace *trace.Recorder
}

// Sweeper runs anti-entropy sweeps between one node's Replicated store and
// its peers. Construct with NewSweeper, then either Start for the
// background loop or SweepOnce for a synchronous pass (tests, drills).
//
//mcvet:lifecycle
type Sweeper struct {
	cfg      SweeperConfig
	ring     *Ring
	rep      *wire.Replicated
	tr       *trace.Recorder
	peers    map[string]*wire.Client
	breakers map[string]*breaker

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	sweeps     atomic.Int64
	ranges     atomic.Int64
	mismatches atomic.Int64
	pulled     atomic.Int64
	pushed     atomic.Int64
	truncated  atomic.Int64
	errorCount atomic.Int64
}

// NewSweeper validates cfg, dials nothing (wire clients connect lazily),
// and installs the shared ownership digest filter on rep so this node
// answers peers' DIGEST requests with the same key set it digests locally.
func NewSweeper(rep *wire.Replicated, cfg SweeperConfig) (*Sweeper, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: SweeperConfig.Self is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(ring.Nodes()) {
		cfg.Replicas = len(ring.Nodes())
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.LeafKeys <= 0 {
		cfg.LeafKeys = 128
	}
	if cfg.LeafKeys > wire.MaxDigestKeys {
		cfg.LeafKeys = wire.MaxDigestKeys
	}
	if cfg.MaxRanges <= 0 {
		cfg.MaxRanges = 1024
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 3
	}
	if cfg.BreakerProbe <= 0 {
		cfg.BreakerProbe = cfg.Interval
	}
	s := &Sweeper{
		cfg:      cfg,
		ring:     ring,
		rep:      rep,
		tr:       cfg.Trace,
		peers:    make(map[string]*wire.Client),
		breakers: make(map[string]*breaker),
		stop:     make(chan struct{}),
	}
	for _, addr := range ring.Nodes() {
		if addr == cfg.Self {
			continue
		}
		wcfg := cfg.Wire
		wcfg.Addr = addr
		wc, err := wire.Dial(wcfg)
		if err != nil {
			return nil, err
		}
		s.peers[addr] = wc
		s.breakers[addr] = newBreaker(cfg.BreakerFailures, cfg.BreakerProbe, breakerSeed(cfg.Seed, addr))
	}
	rep.SetDigestFilter(DigestFilter(ring, cfg.Self, cfg.Replicas))
	return s, nil
}

func (s *Sweeper) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Start launches the background sweep loop.
func (s *Sweeper) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.SweepOnce()
			}
		}
	}()
}

// Close stops the background loop and closes the peer clients.
func (s *Sweeper) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	for _, wc := range s.peers {
		wc.Close()
	}
}

// SweepOnce runs one full anti-entropy pass: every peer's shared key space
// is digest-compared and every divergent key repaired. It returns the
// number of keys repaired (pulled + pushed) and the last per-peer error.
func (s *Sweeper) SweepOnce() (repaired int, err error) {
	s.sweeps.Add(1)
	for addr, wc := range s.peers {
		// A peer whose breaker is open is skipped (and the skip counted)
		// until its jittered probe interval elapses — a dead peer costs
		// nothing per sweep instead of a dial timeout.
		br := s.breakers[addr]
		if !br.allow() {
			continue
		}
		n, perr := s.sweepPeer(addr, wc)
		repaired += n
		if perr != nil {
			br.onFailure()
			s.errorCount.Add(1)
			s.logf("cluster: sweep %s: %v", addr, perr)
			err = perr
		} else {
			br.onSuccess()
		}
	}
	return repaired, err
}

// krange is one [lo, hi] key interval of the bisection.
type krange struct{ lo, hi uint64 }

// sweepPeer reconciles the keys this node shares with one peer by range
// bisection over the full u64 key space. Each peer sweep is a fresh trace
// root: the digest, pull, and push frames carry the sweep's context, so a
// repair arriving at the peer is attributable to anti-entropy rather than
// indistinguishable from client traffic.
func (s *Sweeper) sweepPeer(addr string, wc *wire.Client) (repaired int, err error) {
	root := s.tr.Start(s.tr.Begin(), trace.KindSweepRepair)
	root.Op, root.Peer = wire.OpDigest, trace.PeerHash(addr)
	defer func() {
		root.Kicks = int32(repaired)
		root.Finish()
	}()
	tc := root.Context()

	stack := []krange{{0, ^uint64(0)}}
	budget := s.cfg.MaxRanges
	for len(stack) > 0 && budget > 0 {
		rg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		budget--
		s.ranges.Add(1)

		rd, rc, rkeys, err := wc.DigestRangeCtx(tc, s.cfg.Self, rg.lo, rg.hi, s.cfg.LeafKeys)
		if err != nil {
			return repaired, fmt.Errorf("digest [%d,%d]: %w", rg.lo, rg.hi, err)
		}
		ld, lc, lkeys := s.rep.DigestRange(addr, rg.lo, rg.hi, s.cfg.LeafKeys)
		if rd == ld && rc == lc {
			continue
		}
		s.mismatches.Add(1)
		if rc <= uint64(s.cfg.LeafKeys) && lc <= uint64(s.cfg.LeafKeys) {
			n, err := s.reconcileLeaf(tc, addr, wc, rkeys, lkeys)
			repaired += n
			if err != nil {
				return repaired, err
			}
			continue
		}
		mid := rg.lo + (rg.hi-rg.lo)/2
		stack = append(stack, krange{mid + 1, rg.hi}, krange{rg.lo, mid})
	}
	if len(stack) > 0 {
		// Out of budget with ranges left: count them so a sweep that could
		// not cover everything never reads as clean.
		s.truncated.Add(int64(len(stack)))
		s.logf("cluster: sweep %s: range budget exhausted with %d ranges pending", addr, len(stack))
	}
	return repaired, nil
}

// reconcileLeaf repairs one enumerable range: the newer side of each
// divergent key wins — pulled from the peer via VGET and applied through
// the versioned stream path, or pushed to the peer via REPLICATE (the same
// push read-repair uses).
func (s *Sweeper) reconcileLeaf(tc trace.Context, addr string, wc *wire.Client, remote, local []wire.DigestEntry) (repaired int, err error) {
	lmeta := make(map[uint64]uint64, len(local))
	for _, e := range local {
		lmeta[e.Key] = e.Meta
	}
	var push []wire.Entry
	for _, re := range remote {
		lm, ok := lmeta[re.Key]
		if ok {
			delete(lmeta, re.Key)
		}
		switch {
		case !ok || re.Meta>>1 > lm>>1:
			// The peer is newer: pull its copy.
			n, err := s.pullKey(tc, wc, re)
			repaired += n
			if err != nil {
				return repaired, err
			}
		case lm>>1 > re.Meta>>1:
			// This node is newer: push our copy.
			if e, ok := s.localEntry(re.Key); ok {
				push = append(push, e)
			}
		}
		// Equal sequence numbers: converged (or an unresolvable seq
		// collision no push could fix) — leave it alone.
	}
	// Keys only this node has.
	for k := range lmeta {
		if e, ok := s.localEntry(k); ok {
			push = append(push, e)
		}
	}
	if len(push) > 0 {
		if _, err := wc.ReplicateCtx(tc, push[len(push)-1].Seq, push); err != nil {
			return repaired, fmt.Errorf("push %d repairs: %w", len(push), err)
		}
		repaired += len(push)
		s.pushed.Add(int64(len(push)))
	}
	return repaired, nil
}

// pullKey fetches one divergent key from the peer and applies it locally
// through the versioned apply path.
func (s *Sweeper) pullKey(tc trace.Context, wc *wire.Client, re wire.DigestEntry) (int, error) {
	if re.Meta&1 == 1 {
		// A tombstone's meta already carries everything: apply directly.
		s.rep.ApplyStream([]wire.Entry{{Seq: re.Meta >> 1, Op: wire.OpDel, Key: re.Key}})
		s.pulled.Add(1)
		return 1, nil
	}
	state, value, seq, err := wc.VGetCtx(tc, re.Key)
	if err != nil {
		return 0, fmt.Errorf("pull key %d: %w", re.Key, err)
	}
	switch state {
	case wire.VStateLive:
		s.rep.ApplyStream([]wire.Entry{{Seq: seq, Op: wire.OpPut, Key: re.Key, Value: value}})
	case wire.VStateTomb:
		s.rep.ApplyStream([]wire.Entry{{Seq: seq, Op: wire.OpDel, Key: re.Key}})
	default:
		return 0, nil // vanished between digest and pull; the next sweep settles it
	}
	s.pulled.Add(1)
	return 1, nil
}

// localEntry renders this node's current copy of key as a replication
// entry for a push repair. The digest enumeration's meta is revalidated
// against the live store, so a key that moved on since the digest is
// pushed at its current (newer) state rather than a stale one.
func (s *Sweeper) localEntry(key uint64) (wire.Entry, bool) {
	state, value, seq := s.rep.VGet(key)
	switch state {
	case wire.VStateLive:
		return wire.Entry{Seq: seq, Op: wire.OpPut, Key: key, Value: value}, true
	case wire.VStateTomb:
		return wire.Entry{Seq: seq, Op: wire.OpDel, Key: key}, true
	}
	return wire.Entry{}, false
}

// SweepStats is a snapshot of the sweeper's counters.
type SweepStats struct {
	Sweeps           int64
	Ranges           int64
	MismatchedRanges int64
	KeysPulled       int64
	KeysPushed       int64
	RangesTruncated  int64
	Errors           int64
	// PeersSkipped counts peer sweeps skipped by an open breaker.
	PeersSkipped int64
}

// StatsSnapshot returns the current counter values.
func (s *Sweeper) StatsSnapshot() SweepStats {
	st := SweepStats{
		Sweeps:           s.sweeps.Load(),
		Ranges:           s.ranges.Load(),
		MismatchedRanges: s.mismatches.Load(),
		KeysPulled:       s.pulled.Load(),
		KeysPushed:       s.pushed.Load(),
		RangesTruncated:  s.truncated.Load(),
		Errors:           s.errorCount.Load(),
	}
	for _, br := range s.breakers {
		st.PeersSkipped += br.skips.Load()
	}
	return st
}

// WritePrometheus writes the sweep metrics in Prometheus text exposition
// under the mccuckoo_sweep_ prefix.
func (s *Sweeper) WritePrometheus(w io.Writer) error {
	st := s.StatsSnapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	simple := func(name, help string, v int64) {
		pf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	simple("mccuckoo_sweep_sweeps_total", "Anti-entropy sweeps completed.", st.Sweeps)
	simple("mccuckoo_sweep_ranges_total", "Digest ranges compared.", st.Ranges)
	simple("mccuckoo_sweep_mismatched_ranges_total", "Digest ranges that disagreed.", st.MismatchedRanges)
	simple("mccuckoo_sweep_keys_pulled_total", "Divergent keys pulled from peers.", st.KeysPulled)
	simple("mccuckoo_sweep_keys_pushed_total", "Divergent keys pushed to peers.", st.KeysPushed)
	simple("mccuckoo_sweep_ranges_truncated_total", "Ranges dropped at the per-sweep budget.", st.RangesTruncated)
	simple("mccuckoo_sweep_errors_total", "Per-peer sweep failures.", st.Errors)
	simple("mccuckoo_sweep_peers_skipped_total", "Peer sweeps skipped by an open breaker.", st.PeersSkipped)
	return err
}
