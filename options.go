package mccuckoo

import (
	"fmt"

	"mccuckoo/internal/core"
	"mccuckoo/internal/kv"
)

// Status classifies how an insertion ended.
type Status uint8

const (
	// Placed means the item now lives in the main table.
	Placed Status = iota
	// Updated means the key already existed and its value was replaced.
	Updated
	// Stashed means collision resolution failed and the item went to the
	// stash (it remains fully findable).
	Stashed
	// Failed means the insertion could not be completed: the table is
	// effectively full and no stash (or a full one) was available.
	Failed
)

// String returns a human-readable status name.
func (s Status) String() string { return kv.Status(s).String() }

// InsertResult reports what an insertion did.
type InsertResult struct {
	Status Status
	// Kicks is the number of item relocations this insertion performed.
	Kicks int
}

func fromOutcome(o kv.Outcome) InsertResult {
	return InsertResult{Status: Status(o.Status), Kicks: o.Kicks}
}

// Traffic is the memory-access footprint of a table: accesses to the
// off-chip main table (buckets, stash) and to the on-chip counter array.
type Traffic struct {
	OffChipReads  int64
	OffChipWrites int64
	OnChipReads   int64
	OnChipWrites  int64
}

// Stats aggregates lifetime operation counts.
type Stats struct {
	Inserts     int64
	Updates     int64
	Kicks       int64
	Stashed     int64
	Failures    int64
	Lookups     int64
	Hits        int64
	Deletes     int64
	StashProbes int64

	// Auto-grow activity (see WithAutoGrow). GrowAttempts counts individual
	// Grow calls made by the policy, Grows counts auto-grow episodes that
	// brought the stash back under the threshold, GrowFailures counts Grow
	// calls that returned an error.
	GrowAttempts int64
	Grows        int64
	GrowFailures int64
}

func fromStats(s kv.Stats) Stats {
	return Stats{
		Inserts: s.Inserts, Updates: s.Updates, Kicks: s.Kicks,
		Stashed: s.Stashed, Failures: s.Failures, Lookups: s.Lookups,
		Hits: s.Hits, Deletes: s.Deletes, StashProbes: s.StashProbe,
		GrowAttempts: s.GrowAttempts, Grows: s.Grows, GrowFailures: s.GrowFailures,
	}
}

// config collects option state before it is translated to a core.Config.
type config struct {
	d          int
	slots      int
	maxLoop    int
	seed       uint64
	policy     kv.KickPolicy
	deletion   core.DeletionMode
	noStash    bool
	stashMax   int
	noPre      bool
	unique     bool
	doubleHash bool
	autoGrow   core.AutoGrowPolicy
	tel        *Telemetry
}

// Option customizes a table.
type Option func(*config) error

// WithHashFunctions sets the number of hash functions d (2–4; default 3,
// which the paper shows is sufficient for loads well over 90%).
func WithHashFunctions(d int) Option {
	return func(c *config) error {
		if d < 2 || d > 4 {
			return fmt.Errorf("mccuckoo: d must be in [2,4], got %d", d)
		}
		c.d = d
		return nil
	}
}

// WithSlots sets the slots per bucket of a blocked table (2–4; default 3).
// Ignored by New.
func WithSlots(l int) Option {
	return func(c *config) error {
		if l < 2 || l > 4 {
			return fmt.Errorf("mccuckoo: slots must be in [2,4], got %d", l)
		}
		c.slots = l
		return nil
	}
}

// WithMaxLoop bounds the kick-out chain length (default 500).
func WithMaxLoop(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("mccuckoo: maxloop must be positive, got %d", n)
		}
		c.maxLoop = n
		return nil
	}
}

// WithSeed fixes the hash seeds and the random walk for reproducibility.
func WithSeed(seed uint64) Option {
	return func(c *config) error { c.seed = seed; return nil }
}

// WithoutStash disables the overflow stash: insertions that cannot be placed
// return Failed instead of Stashed. The stash is on by default and unbounded
// (it lives in abundant off-chip memory, the paper's §III.E point).
func WithoutStash() Option {
	return func(c *config) error { c.noStash = true; return nil }
}

// WithStashLimit caps the stash population; inserts beyond it Fail.
func WithStashLimit(max int) Option {
	return func(c *config) error {
		if max < 1 {
			return fmt.Errorf("mccuckoo: stash limit must be positive, got %d", max)
		}
		c.stashMax = max
		return nil
	}
}

// WithTombstoneDeletion marks deleted buckets instead of zeroing their
// counters, preserving the never-inserted shortcut for negative lookups at
// the cost of one extra counter bit (§III.B.3).
func WithTombstoneDeletion() Option {
	return func(c *config) error { c.deletion = core.Tombstone; return nil }
}

// WithMinCounterResolver switches collision resolution from the paper's
// random walk to MinCounter-style victim selection.
func WithMinCounterResolver() Option {
	return func(c *config) error { c.policy = kv.MinCounter; return nil }
}

// WithoutLookupPrescreen makes lookups read candidate buckets the
// traditional way, ignoring the counters (the paper's §IV.F fallback for
// platforms where counter checks are not cheap).
func WithoutLookupPrescreen() Option {
	return func(c *config) error { c.noPre = true; return nil }
}

// WithDoubleHashing derives all d bucket indexes from two hash computations
// (h1 + i·h2 mod n), the construction of the paper's reference [21]: cheaper
// hashing with provably unchanged cuckoo load thresholds.
func WithDoubleHashing() Option {
	return func(c *config) error { c.doubleHash = true; return nil }
}

// AutoGrowPolicy configures graceful degradation under stash pressure; see
// WithAutoGrow.
type AutoGrowPolicy struct {
	// StashThreshold is the stash population above which an insertion that
	// lands in the stash triggers a grow. 0 means grow on any stashed insert.
	StashThreshold int
	// Factor is the capacity multiplier of the first grow attempt
	// (default 2.0; must be > 1).
	Factor float64
	// MaxAttempts bounds the Grow calls of one auto-grow episode
	// (default 3).
	MaxAttempts int
	// Backoff multiplies Factor between attempts when a grow did not bring
	// the stash back under the threshold (default 1.5; must be >= 1).
	Backoff float64
}

// WithAutoGrow enables automatic capacity growth: when an insertion lands in
// the stash and the stash population exceeds policy.StashThreshold, the table
// grows by policy.Factor (retrying up to policy.MaxAttempts times with
// multiplicative policy.Backoff) until the stash drains back under the
// threshold. Zero-valued policy fields take the documented defaults.
// Requires the stash (incompatible with WithoutStash); attempts and outcomes
// are surfaced in Stats.
func WithAutoGrow(policy AutoGrowPolicy) Option {
	return func(c *config) error {
		c.autoGrow = core.AutoGrowPolicy{
			Enabled:        true,
			StashThreshold: policy.StashThreshold,
			Factor:         policy.Factor,
			MaxAttempts:    policy.MaxAttempts,
			Backoff:        policy.Backoff,
		}
		return nil
	}
}

// WithUniqueKeys promises that every inserted key is new, skipping the
// duplicate-key scan on insert. Inserting an existing key with this option
// corrupts the table; use it only for bulk loads of deduplicated data.
func WithUniqueKeys() Option {
	return func(c *config) error { c.unique = true; return nil }
}

// buildConfig translates options into a core.Config for a table whose main
// array should hold roughly `capacity` slots in total. The second result is
// the telemetry attachment requested via WithTelemetry (nil when absent),
// which lives outside core.Config because the collector wraps the table
// rather than configuring it.
func buildConfig(capacity int, blocked bool, opts []Option) (core.Config, *Telemetry, error) {
	if capacity < 8 {
		return core.Config{}, nil, fmt.Errorf("mccuckoo: capacity must be at least 8, got %d", capacity)
	}
	c := config{d: 3, slots: 1, seed: 1}
	if blocked {
		c.slots = 3
	}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return core.Config{}, nil, err
		}
	}
	perTable := (capacity + c.d*c.slots - 1) / (c.d * c.slots)
	return core.Config{
		D:                c.d,
		Slots:            c.slots,
		BucketsPerTable:  perTable,
		MaxLoop:          c.maxLoop,
		Seed:             c.seed,
		Policy:           c.policy,
		Deletion:         c.deletion,
		StashEnabled:     !c.noStash,
		StashMax:         c.stashMax,
		DisablePrescreen: c.noPre,
		AssumeUniqueKeys: c.unique,
		DoubleHashing:    c.doubleHash,
		AutoGrow:         c.autoGrow,
	}, c.tel, nil
}

// loadOptions applies opts for a Load call. A snapshot carries its own
// structural configuration (hash functions, seed, stash, ...), so structural
// options are accepted but have no effect there; only attachment options —
// WithTelemetry — are meaningful, and the requested telemetry is returned.
func loadOptions(opts []Option) (*Telemetry, error) {
	c := config{d: 3, slots: 1, seed: 1}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	return c.tel, nil
}
