package mccuckoo

// This file is the unified face of the four table kinds. Until PR 5 the
// kinds (Table, Blocked, Concurrent, Sharded) exposed near-identical but
// unrelated method sets, so every consumer — the benchmark harness, the
// trace replayer, the examples — re-implemented dispatch. Store and
// BatchStore name the common contract once; the network serving layer
// (internal/wire, cmd/mcserved) binds to these interfaces and nothing else.

// Store is the operation surface every table kind implements: point
// operations plus the inspection methods a server or harness needs to
// reason about occupancy.
//
// Implementations differ in their concurrency contract, not their method
// set: Table and Blocked are single-goroutine structures, Concurrent is
// one-writer-many-readers, and Sharded is safe for any number of
// goroutines. See the package documentation's Concurrency section before
// sharing a Store between goroutines.
type Store interface {
	// Insert stores key/value, replacing the value if key is already
	// present (unless the table was built WithUniqueKeys).
	Insert(key, value uint64) InsertResult
	// Lookup returns the value stored for key.
	Lookup(key uint64) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Len returns the number of distinct live items, stash included.
	Len() int
	// Capacity returns the total slot count of the main table.
	Capacity() int
	// LoadRatio returns Len()/Capacity(), the paper's load metric.
	LoadRatio() float64
	// StashLen returns the current stash population.
	StashLen() int
	// Stats returns lifetime operation counts.
	Stats() Stats
}

// BatchStore is a Store with batched operations. Results always come back
// in input order. The Into variants write through caller-owned slices so a
// replay or serving loop can reuse its buffers across batches; the plain
// forms allocate fresh result slices per call.
//
// Only Sharded amortizes lock traffic across a batch (each touched shard's
// lock is taken once per batch); the other kinds execute batches as a
// plain loop over the point operations, so the batch forms are a uniform
// calling convention, not a speedup, there.
type BatchStore interface {
	Store
	// InsertBatch stores every keys[i]/values[i] pair. len(values) must
	// equal len(keys).
	InsertBatch(keys, values []uint64) []InsertResult
	// InsertBatchInto is InsertBatch writing outcomes into out, which must
	// be nil (discard outcomes) or exactly len(keys) long.
	InsertBatchInto(keys, values []uint64, out []InsertResult)
	// LookupBatch answers every key; values[i], found[i] correspond to
	// keys[i].
	LookupBatch(keys []uint64) (values []uint64, found []bool)
	// LookupBatchInto is LookupBatch writing answers into values and
	// found, each of which must be exactly len(keys) long.
	LookupBatchInto(keys []uint64, values []uint64, found []bool)
	// DeleteBatch removes every key; removed[i] reports whether keys[i]
	// was present.
	DeleteBatch(keys []uint64) (removed []bool)
	// DeleteBatchInto is DeleteBatch writing results into removed, which
	// must be nil (discard results) or exactly len(keys) long.
	DeleteBatchInto(keys []uint64, removed []bool)
}

// Every public table kind satisfies both interfaces.
var (
	_ Store = (*Table)(nil)
	_ Store = (*Blocked)(nil)
	_ Store = (*Concurrent)(nil)
	_ Store = (*Sharded)(nil)

	_ BatchStore = (*Table)(nil)
	_ BatchStore = (*Blocked)(nil)
	_ BatchStore = (*Concurrent)(nil)
	_ BatchStore = (*Sharded)(nil)
)
