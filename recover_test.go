package mccuckoo

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mccuckoo/internal/hashutil"
)

func TestPublicSaveLoadFile(t *testing.T) {
	tab, err := New(600, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(22)
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i]*2)
	}
	path := filepath.Join(t.TempDir(), "table.mck")
	if err := tab.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	for _, k := range keys {
		if v, ok := got.Lookup(k); !ok || v != k*2 {
			t.Fatalf("key %#x lost across file round trip", k)
		}
	}

	// A flipped bit in the file is rejected with the typed error.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted file not rejected with *CorruptError: %v", err)
	}
}

func TestPublicBlockedSaveLoadFile(t *testing.T) {
	tab, err := NewBlocked(300, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(24)
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i])
	}
	path := filepath.Join(t.TempDir(), "blocked.mck")
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBlockedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, ok := got.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost across blocked file round trip", k)
		}
	}
}

func TestPublicShardedSaveLoadFile(t *testing.T) {
	tab, err := NewSharded(2000, 8, WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(26)
	keys := make([]uint64, 1200)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i]^5)
	}
	path := filepath.Join(t.TempDir(), "sharded.mck")
	if err := tab.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadShardedFile(path)
	if err != nil {
		t.Fatalf("LoadShardedFile: %v", err)
	}
	if got.Shards() != tab.Shards() || got.Len() != tab.Len() {
		t.Fatalf("shape differs: shards %d/%d len %d/%d",
			got.Shards(), tab.Shards(), got.Len(), tab.Len())
	}
	for _, k := range keys {
		if v, ok := got.Lookup(k); !ok || v != k^5 {
			t.Fatalf("key %#x lost across sharded file round trip", k)
		}
	}
}

// The corruption-healing behaviour of Repair is exercised through the raw
// accessors in internal/faultinject; the public surface promises that Repair
// on a healthy table reports no changes and damages nothing.
func TestPublicRepairHealthy(t *testing.T) {
	tab, err := New(400, WithSeed(27))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(28)
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i]+9)
	}
	rep := tab.Repair()
	if rep.Any() {
		t.Fatalf("repair of healthy table reported changes: %+v", rep)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k+9 {
			t.Fatalf("key %#x damaged by repair", k)
		}
	}

	blocked, err := NewBlocked(200, WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	blocked.Insert(5, 50)
	if rep := blocked.Repair(); rep.Any() {
		t.Fatalf("blocked repair reported changes: %+v", rep)
	}

	sh, err := NewSharded(800, 4, WithSeed(30))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i < 400; i++ {
		sh.Insert(i*0x9e3779b97f4a7c15, i)
	}
	if rep := sh.Repair(); rep.Any() {
		t.Fatalf("sharded repair reported changes: %+v", rep)
	}
}

func TestPublicAutoGrow(t *testing.T) {
	tab, err := New(256, WithSeed(31),
		WithAutoGrow(AutoGrowPolicy{StashThreshold: 4}))
	if err != nil {
		t.Fatal(err)
	}
	before := tab.Capacity()
	s := uint64(32)
	keys := make([]uint64, 4*before)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i])
	}
	if tab.Capacity() <= before {
		t.Fatalf("capacity did not grow: %d", tab.Capacity())
	}
	st := tab.Stats()
	if st.Grows == 0 || st.GrowAttempts == 0 {
		t.Fatalf("grow stats not surfaced: %+v", st)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost during auto-grow", k)
		}
	}
}

func TestPublicShardedGrow(t *testing.T) {
	tab, err := NewSharded(512, 4, WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(34)
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i]*7)
	}
	before := tab.Capacity()
	if err := tab.Grow(2.0); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if tab.Capacity() < 2*before {
		t.Fatalf("capacity %d after 2x grow of %d", tab.Capacity(), before)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k*7 {
			t.Fatalf("key %#x lost across sharded grow", k)
		}
	}
}
