package mccuckoo

import (
	"testing"
)

// storeKinds builds one instance of every public Store kind at the given
// capacity, all seeded identically. Every kind must pass the same
// conformance matrix — the point of the Store/BatchStore redesign is that
// consumers cannot tell them apart.
func storeKinds(t *testing.T, capacity int) map[string]BatchStore {
	t.Helper()
	single, err := New(capacity, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := NewBlocked(capacity, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := New(capacity, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(capacity, 4, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]BatchStore{
		"table":      single,
		"blocked":    blocked,
		"concurrent": NewConcurrent(wrapped),
		"sharded":    sharded,
	}
}

func key(i int) uint64 { return uint64(i)*2654435761 + 1 }
func val(i int) uint64 { return uint64(i) ^ 0xfeedface }

// TestStoreConformance runs the same insert/lookup/delete/batch matrix over
// every Store implementation against a reference map.
func TestStoreConformance(t *testing.T) {
	const n = 2000
	for name, s := range storeKinds(t, 4*n) {
		t.Run(name, func(t *testing.T) {
			ref := make(map[uint64]uint64, n)

			// Point inserts, including updates of live keys.
			for i := 0; i < n; i++ {
				r := s.Insert(key(i), val(i))
				if r.Status == Failed {
					t.Fatalf("insert %d failed at load %.2f", i, s.LoadRatio())
				}
				ref[key(i)] = val(i)
			}
			for i := 0; i < n; i += 3 {
				r := s.Insert(key(i), val(i)+1)
				if r.Status != Updated {
					t.Fatalf("re-insert %d: status %v, want Updated", i, r.Status)
				}
				ref[key(i)] = val(i) + 1
			}

			// Point lookups, positive and negative.
			for i := 0; i < n; i++ {
				v, ok := s.Lookup(key(i))
				if !ok || v != ref[key(i)] {
					t.Fatalf("lookup %d: got %d,%v want %d,true", i, v, ok, ref[key(i)])
				}
			}
			for i := n; i < n+100; i++ {
				if _, ok := s.Lookup(key(i)); ok {
					t.Fatalf("lookup of never-inserted key %d hit", i)
				}
			}

			// Point deletes; deleted keys must stop answering.
			for i := 0; i < n; i += 5 {
				if !s.Delete(key(i)) {
					t.Fatalf("delete %d: not present", i)
				}
				delete(ref, key(i))
				if s.Delete(key(i)) {
					t.Fatalf("double delete %d reported present", i)
				}
			}
			checkAgainst(t, s, ref, n)

			if s.Len() != len(ref) {
				t.Fatalf("Len() = %d, want %d", s.Len(), len(ref))
			}
			if c := s.Capacity(); c < 4*n/2 {
				t.Fatalf("Capacity() = %d, implausibly small", c)
			}
			if lr := s.LoadRatio(); lr <= 0 || lr > 1 {
				t.Fatalf("LoadRatio() = %v out of (0,1]", lr)
			}
			if s.StashLen() < 0 {
				t.Fatalf("StashLen() = %d negative", s.StashLen())
			}
			st := s.Stats()
			if st.Inserts == 0 || st.Lookups == 0 || st.Deletes == 0 {
				t.Fatalf("Stats() missing counts: %+v", st)
			}
		})
	}
}

// TestBatchStoreConformance checks that the batched forms agree with the
// point operations and with each other (plain vs Into) on every kind.
func TestBatchStoreConformance(t *testing.T) {
	const n = 1200
	for name, s := range storeKinds(t, 4*n) {
		t.Run(name, func(t *testing.T) {
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i], vals[i] = key(i), val(i)
			}

			res := s.InsertBatch(keys, vals)
			if len(res) != n {
				t.Fatalf("InsertBatch returned %d results, want %d", len(res), n)
			}
			for i, r := range res {
				if r.Status == Failed {
					t.Fatalf("batch insert %d failed", i)
				}
			}

			// Re-insert through the Into variant with a reused scratch
			// slice: every key is live, so every result must be Updated.
			out := make([]InsertResult, n)
			s.InsertBatchInto(keys, vals, out)
			for i, r := range out {
				if r.Status != Updated {
					t.Fatalf("batch re-insert %d: status %v, want Updated", i, r.Status)
				}
			}

			// Mixed positive/negative batch lookup, plain and Into.
			probe := make([]uint64, 0, n+200)
			probe = append(probe, keys...)
			for i := n; i < n+200; i++ {
				probe = append(probe, key(i))
			}
			gotVals, gotFound := s.LookupBatch(probe)
			intoVals := make([]uint64, len(probe))
			intoFound := make([]bool, len(probe))
			s.LookupBatchInto(probe, intoVals, intoFound)
			for i := range probe {
				wantOK := i < n
				if gotFound[i] != wantOK || intoFound[i] != wantOK {
					t.Fatalf("batch lookup %d: found %v/%v, want %v", i, gotFound[i], intoFound[i], wantOK)
				}
				if wantOK && (gotVals[i] != vals[i] || intoVals[i] != vals[i]) {
					t.Fatalf("batch lookup %d: values %d/%d, want %d", i, gotVals[i], intoVals[i], vals[i])
				}
			}

			// Delete half through the batch form, the rest through Into
			// with a nil result slice (discard).
			removed := s.DeleteBatch(probe[:n/2])
			for i, ok := range removed {
				if !ok {
					t.Fatalf("batch delete %d reported absent", i)
				}
			}
			s.DeleteBatchInto(keys[n/2:], nil)
			if s.Len() != 0 {
				t.Fatalf("after full delete Len() = %d, want 0", s.Len())
			}

			// Batch argument validation panics, uniformly across kinds.
			mustPanic(t, name+"/mismatched", func() { s.InsertBatch(keys[:3], vals[:2]) })
			mustPanic(t, name+"/shortout", func() { s.InsertBatchInto(keys[:3], vals[:3], make([]InsertResult, 2)) })
			mustPanic(t, name+"/shortfound", func() { s.LookupBatchInto(keys[:3], make([]uint64, 3), make([]bool, 2)) })
			mustPanic(t, name+"/shortremoved", func() { s.DeleteBatchInto(keys[:3], make([]bool, 2)) })
		})
	}
}

// TestBatchMatchesPoint replays the same mixed trace through point ops on
// one instance and batches on another; final contents must be identical.
func TestBatchMatchesPoint(t *testing.T) {
	const n = 800
	kinds := []string{"table", "blocked", "concurrent", "sharded"}
	for _, name := range kinds {
		t.Run(name, func(t *testing.T) {
			point := storeKinds(t, 8*n)[name]
			batched := storeKinds(t, 8*n)[name]

			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i], vals[i] = key(i), val(i)
			}
			for i := range keys {
				point.Insert(keys[i], vals[i])
			}
			batched.InsertBatch(keys, vals)
			for i := 0; i < n; i += 2 {
				point.Delete(keys[i])
			}
			half := make([]uint64, 0, n/2)
			for i := 0; i < n; i += 2 {
				half = append(half, keys[i])
			}
			batched.DeleteBatch(half)

			if point.Len() != batched.Len() {
				t.Fatalf("Len diverged: point %d, batched %d", point.Len(), batched.Len())
			}
			pv, pf := point.LookupBatch(keys)
			bv, bf := batched.LookupBatch(keys)
			for i := range keys {
				if pf[i] != bf[i] || (pf[i] && pv[i] != bv[i]) {
					t.Fatalf("key %d diverged: point %d,%v batched %d,%v", i, pv[i], pf[i], bv[i], bf[i])
				}
			}
		})
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func checkAgainst(t *testing.T, s Store, ref map[uint64]uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		want, live := ref[key(i)]
		got, ok := s.Lookup(key(i))
		if ok != live || (live && got != want) {
			t.Fatalf("key %d: got %d,%v want %d,%v", i, got, ok, want, live)
		}
	}
}
