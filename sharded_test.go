package mccuckoo

import (
	"sync"
	"testing"

	"mccuckoo/internal/hashutil"
)

func TestNewShardedValidation(t *testing.T) {
	for _, bad := range []struct{ cap, shards int }{
		{30000, 0}, {30000, 3}, {30000, 12}, {30000, -4}, {16, 4},
	} {
		if _, err := NewSharded(bad.cap, bad.shards); err == nil {
			t.Errorf("NewSharded(%d, %d) accepted", bad.cap, bad.shards)
		}
	}
	if _, err := NewSharded(30000, 4, WithHashFunctions(9)); err == nil {
		t.Error("bad option accepted")
	}
	s, err := NewSharded(30000, 8, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", s.Shards())
	}
	if c := s.Capacity(); c < 30000 {
		t.Fatalf("Capacity = %d, want >= 30000", c)
	}
}

func TestShardedRoundTrip(t *testing.T) {
	s, err := NewSharded(12000, 4, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 5000; k++ {
		if res := s.Insert(k, k*2); res.Status == Failed {
			t.Fatalf("insert %d failed", k)
		}
	}
	if s.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", s.Len())
	}
	for k := uint64(1); k <= 5000; k++ {
		if v, ok := s.Lookup(k); !ok || v != k*2 {
			t.Fatalf("lookup(%d) = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := s.Lookup(99999999); ok {
		t.Fatal("absent key found")
	}
	// Upsert.
	s.Insert(1, 42)
	if v, _ := s.Lookup(1); v != 42 {
		t.Fatal("upsert did not replace value")
	}
	if !s.Delete(1) || s.Delete(1) {
		t.Fatal("delete semantics broken")
	}
	if s.LoadRatio() <= 0 || s.StashLen() < 0 {
		t.Fatal("accessor smoke checks failed")
	}
	st := s.Stats()
	if st.Inserts != 5001 || st.Updates != 1 || st.Deletes != 2 || st.Lookups == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShardedBatchAPI(t *testing.T) {
	s, err := NewSharded(30000, 8, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	n := 4000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i) * 10
	}
	res := s.InsertBatch(keys, vals)
	if len(res) != n {
		t.Fatalf("InsertBatch returned %d results", len(res))
	}
	for i, r := range res {
		if r.Status != Placed {
			t.Fatalf("batch insert %d: status %v", i, r.Status)
		}
	}
	got, ok := s.LookupBatch(append(keys[:10:10], 777777))
	for i := 0; i < 10; i++ {
		if !ok[i] || got[i] != vals[i] {
			t.Fatalf("batch lookup %d: (%d,%v)", i, got[i], ok[i])
		}
	}
	if ok[10] {
		t.Fatal("absent key found by LookupBatch")
	}
	removed := s.DeleteBatch(keys[:100])
	for i, r := range removed {
		if !r {
			t.Fatalf("batch delete %d reported absent", i)
		}
	}
	if s.Len() != n-100 {
		t.Fatalf("Len = %d, want %d", s.Len(), n-100)
	}
}

func TestShardedShardStats(t *testing.T) {
	s, err := NewSharded(40000, 16, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 20000)
	rng := uint64(3)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&rng)
	}
	vals := make([]uint64, len(keys))
	s.InsertBatch(keys, vals)
	for _, k := range keys[:5000] {
		s.Lookup(k)
	}
	st := s.ShardStats()
	if len(st.Shards) != 16 {
		t.Fatalf("%d shard stats, want 16", len(st.Shards))
	}
	var items int
	var readLocks, writeLocks int64
	for _, sh := range st.Shards {
		items += sh.Items
		readLocks += sh.ReadLocks
		writeLocks += sh.WriteLocks
		if sh.Capacity == 0 || sh.LoadRatio <= 0 {
			t.Fatalf("shard %d: empty capacity or load", sh.Shard)
		}
	}
	if items != st.Items || items != s.Len() {
		t.Fatalf("per-shard items %d, aggregate %d, Len %d", items, st.Items, s.Len())
	}
	if readLocks != st.ReadLocks || writeLocks != st.WriteLocks {
		t.Fatal("lock counters do not aggregate")
	}
	// One InsertBatch: at most one write-lock acquisition per shard.
	if writeLocks > 16 {
		t.Fatalf("write locks = %d for a single batch over 16 shards", writeLocks)
	}
	if st.Hits != 5000 {
		t.Fatalf("Hits = %d, want 5000", st.Hits)
	}
	if st.MinLoad <= 0 || st.MaxLoad >= 1 || st.MinLoad > st.MaxLoad {
		t.Fatalf("load bounds: min %.3f max %.3f", st.MinLoad, st.MaxLoad)
	}
	// Uniform keys over 16 shards: loads should be in the same ballpark.
	if st.MaxLoad > 2.5*st.MinLoad {
		t.Fatalf("shard imbalance: min %.3f max %.3f", st.MinLoad, st.MaxLoad)
	}
}

func TestShardedRange(t *testing.T) {
	s, err := NewSharded(12000, 4, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 3000; k++ {
		s.Insert(k, k+7)
	}
	seen := make(map[uint64]uint64, 3000)
	s.Range(func(k, v uint64) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("key %d reported twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != 3000 {
		t.Fatalf("Range saw %d items, want 3000", len(seen))
	}
	for k, v := range seen {
		if v != k+7 {
			t.Fatalf("key %d: value %d, want %d", k, v, k+7)
		}
	}
}

// TestShardedConcurrentSmoke exercises the public API from many goroutines
// (covered in depth by internal/shard's race tests).
func TestShardedConcurrentSmoke(t *testing.T) {
	s, err := NewSharded(60000, 8, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	const perG, goros = 2000, 4
	var wg sync.WaitGroup
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			for k := base; k < base+perG; k++ {
				s.Insert(k, k^0xabc)
			}
			for k := base; k < base+perG; k++ {
				if v, ok := s.Lookup(k); !ok || v != k^0xabc {
					t.Errorf("goroutine %d: key %d = (%d,%v)", g, k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != perG*goros {
		t.Fatalf("Len = %d, want %d", s.Len(), perG*goros)
	}
}
