package mccuckoo

import (
	"fmt"

	"mccuckoo/internal/hashutil"
)

// Map adapts a McCuckoo table into a generic key/value map for arbitrary
// comparable key types. The table stores a 64-bit fingerprint of each key
// mapped to the index of the entry in a side arena — the "indexing structure
// pointing to the address where the items are actually stored" pattern of
// §III.H. Fingerprint collisions between distinct keys are handled exactly
// (colliding keys spill into a small exact-match overflow), so Map semantics
// are those of a plain Go map.
type Map[K comparable, V any] struct {
	table   *Table
	hasher  func(K) uint64
	entries []mapEntry[K, V]
	free    []int
	// spill holds keys whose fingerprint collided with a different
	// resident key. With 64-bit fingerprints this stays empty in
	// practice; it exists for exactness.
	spill map[K]V
}

type mapEntry[K comparable, V any] struct {
	key  K
	val  V
	live bool
}

// NewMap creates a Map with the given capacity (in table buckets) and key
// hasher. Use StringHasher/BytesHasher/Uint64Hasher, or supply your own;
// the hasher must be deterministic.
func NewMap[K comparable, V any](capacity int, hasher func(K) uint64, opts ...Option) (*Map[K, V], error) {
	if hasher == nil {
		return nil, fmt.Errorf("mccuckoo: hasher must not be nil")
	}
	t, err := New(capacity, opts...)
	if err != nil {
		return nil, err
	}
	return &Map[K, V]{
		table:  t,
		hasher: hasher,
		spill:  make(map[K]V),
	}, nil
}

// StringHasher fingerprints string keys with BOB hash.
func StringHasher(s string) uint64 {
	return hashutil.BOB64([]byte(s), 0x6d63_6375_636b_6f6f)
}

// BytesHasher fingerprints byte-slice keys with BOB hash.
func BytesHasher(b []byte) uint64 {
	return hashutil.BOB64(b, 0x6d63_6375_636b_6f6f)
}

// Uint64Hasher fingerprints integer keys with a splitmix64 mix.
func Uint64Hasher(k uint64) uint64 { return hashutil.Mix64(k) }

// Set stores key/value. It returns an error only when the underlying table
// rejects the insertion outright (full table with a bounded or disabled
// stash).
func (m *Map[K, V]) Set(key K, value V) error {
	if _, spilled := m.spill[key]; spilled {
		m.spill[key] = value
		return nil
	}
	fp := m.hasher(key)
	if idx, ok := m.table.Lookup(fp); ok {
		e := &m.entries[idx]
		if e.key == key {
			e.val = value
			return nil
		}
		// Fingerprint collision with a different key: exact spill.
		m.spill[key] = value
		return nil
	}
	idx := m.alloc(key, value)
	if res := m.table.Insert(fp, idx); res.Status == Failed {
		m.dealloc(int(idx))
		return fmt.Errorf("mccuckoo: map is full (load %.2f)", m.table.LoadRatio())
	}
	return nil
}

// Get returns the value stored for key.
func (m *Map[K, V]) Get(key K) (V, bool) {
	if v, ok := m.spill[key]; ok {
		return v, true
	}
	var zero V
	idx, ok := m.table.Lookup(m.hasher(key))
	if !ok {
		return zero, false
	}
	e := m.entries[idx]
	if !e.live || e.key != key {
		return zero, false
	}
	return e.val, true
}

// Delete removes key, reporting whether it was present.
func (m *Map[K, V]) Delete(key K) bool {
	if _, ok := m.spill[key]; ok {
		delete(m.spill, key)
		return true
	}
	fp := m.hasher(key)
	idx, ok := m.table.Lookup(fp)
	if !ok || !m.entries[idx].live || m.entries[idx].key != key {
		return false
	}
	m.table.Delete(fp)
	m.dealloc(int(idx))
	return true
}

// Len returns the number of stored keys.
func (m *Map[K, V]) Len() int {
	return m.table.Len() + len(m.spill)
}

// LoadRatio returns the underlying table's load ratio.
func (m *Map[K, V]) LoadRatio() float64 { return m.table.LoadRatio() }

// Traffic returns the underlying table's memory-access counts.
func (m *Map[K, V]) Traffic() Traffic { return m.table.Traffic() }

// Range calls fn for every key/value pair until fn returns false. Iteration
// order is unspecified.
func (m *Map[K, V]) Range(fn func(K, V) bool) {
	for _, e := range m.entries {
		if e.live && !fn(e.key, e.val) {
			return
		}
	}
	for k, v := range m.spill {
		if !fn(k, v) {
			return
		}
	}
}

func (m *Map[K, V]) alloc(key K, value V) uint64 {
	if n := len(m.free); n > 0 {
		idx := m.free[n-1]
		m.free = m.free[:n-1]
		m.entries[idx] = mapEntry[K, V]{key: key, val: value, live: true}
		return uint64(idx)
	}
	m.entries = append(m.entries, mapEntry[K, V]{key: key, val: value, live: true})
	return uint64(len(m.entries) - 1)
}

func (m *Map[K, V]) dealloc(idx int) {
	var zero mapEntry[K, V]
	m.entries[idx] = zero
	m.free = append(m.free, idx)
}
