package mccuckoo

import (
	"fmt"
	"sort"
	"testing"

	"mccuckoo/internal/hashutil"
)

func TestMultiMapBasics(t *testing.T) {
	m, err := NewMultiMap[string, int](1000, StringHasher, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiMap[string, int](100, nil); err == nil {
		t.Error("nil hasher accepted")
	}
	for i := 0; i < 5; i++ {
		if err := m.Add("color", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Add("shape", 99); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 6 {
		t.Fatalf("Len = %d", m.Len())
	}
	got := m.Get("color")
	if len(got) != 5 {
		t.Fatalf("Get(color) = %v", got)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("values %v", got)
		}
	}
	if !m.Contains("shape") || m.Contains("missing") {
		t.Fatal("Contains broken")
	}
	if got := m.Get("missing"); got != nil {
		t.Fatalf("Get(missing) = %v", got)
	}
}

func TestMultiMapRemove(t *testing.T) {
	m, err := NewMultiMap[string, int](1000, StringHasher, WithSeed(32))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Add("a", i)
	}
	m.Add("b", 100)
	if n := m.Remove("a"); n != 4 {
		t.Fatalf("Remove(a) = %d", n)
	}
	if m.Contains("a") || m.Len() != 1 {
		t.Fatalf("post-remove state: contains=%v len=%d", m.Contains("a"), m.Len())
	}
	if n := m.Remove("a"); n != 0 {
		t.Fatalf("double Remove = %d", n)
	}
	if got := m.Get("b"); len(got) != 1 || got[0] != 100 {
		t.Fatalf("b damaged: %v", got)
	}
	// Freed nodes are reused.
	for i := 0; i < 4; i++ {
		m.Add("c", i)
	}
	if len(m.Get("c")) != 4 {
		t.Fatal("reuse broken")
	}
}

func TestMultiMapFingerprintCollision(t *testing.T) {
	// All keys collide on one fingerprint: chains are shared but access
	// stays exact.
	m, err := NewMultiMap[string, int](300, func(string) uint64 { return 7 }, WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	m.Add("x", 1)
	m.Add("y", 2)
	m.Add("x", 3)
	if got := m.Get("x"); len(got) != 2 {
		t.Fatalf("Get(x) = %v", got)
	}
	if got := m.Get("y"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Get(y) = %v", got)
	}
	if n := m.Remove("x"); n != 2 {
		t.Fatalf("Remove(x) = %d", n)
	}
	if got := m.Get("y"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("y damaged by colliding remove: %v", got)
	}
	if n := m.Remove("y"); n != 1 {
		t.Fatalf("Remove(y) = %d", n)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMultiMapModelEquivalence(t *testing.T) {
	m, err := NewMultiMap[uint32, uint32](4000, func(k uint32) uint64 {
		return hashutil.Mix64(uint64(k))
	}, WithSeed(34))
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint32][]uint32{}
	s := uint64(35)
	for i := 0; i < 8000; i++ {
		r := hashutil.SplitMix64(&s)
		key := uint32(r % 600)
		switch (r >> 32) % 4 {
		case 0, 1:
			val := uint32(r >> 40)
			if err := m.Add(key, val); err == nil {
				model[key] = append(model[key], val)
			}
		case 2:
			got := m.Get(key)
			want := model[key]
			if len(got) != len(want) {
				t.Fatalf("op %d: Get(%d) has %d values, want %d", i, key, len(got), len(want))
			}
			gotSorted := append([]uint32(nil), got...)
			wantSorted := append([]uint32(nil), want...)
			sort.Slice(gotSorted, func(a, b int) bool { return gotSorted[a] < gotSorted[b] })
			sort.Slice(wantSorted, func(a, b int) bool { return wantSorted[a] < wantSorted[b] })
			for j := range gotSorted {
				if gotSorted[j] != wantSorted[j] {
					t.Fatalf("op %d: Get(%d) = %v, want %v", i, key, gotSorted, wantSorted)
				}
			}
		case 3:
			if got, want := m.Remove(key), len(model[key]); got != want {
				t.Fatalf("op %d: Remove(%d) = %d, want %d", i, key, got, want)
			}
			delete(model, key)
		}
	}
	total := 0
	for _, vs := range model {
		total += len(vs)
	}
	if m.Len() != total {
		t.Fatalf("Len = %d, model %d", m.Len(), total)
	}
	// Range covers every pair.
	counted := 0
	m.Range(func(k uint32, v uint32) bool {
		counted++
		return true
	})
	if counted != total {
		t.Fatalf("Range visited %d pairs, want %d", counted, total)
	}
}

func TestMultiMapPostingsExample(t *testing.T) {
	// The §III.H shape: a term index where each word maps to the list of
	// documents containing it.
	m, err := NewMultiMap[string, int](2000, StringHasher, WithSeed(36))
	if err != nil {
		t.Fatal(err)
	}
	for doc := 0; doc < 50; doc++ {
		for w := 0; w <= doc%7; w++ {
			if err := m.Add(fmt.Sprintf("word-%d", w), doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	postings := m.Get("word-0")
	if len(postings) != 50 {
		t.Fatalf("word-0 appears in %d docs, want 50", len(postings))
	}
	if len(m.Get("word-6")) != 7 {
		t.Fatalf("word-6 postings = %d, want 7", len(m.Get("word-6")))
	}
	if m.Traffic().OffChipReads == 0 {
		t.Fatal("traffic not accounted")
	}
}
