package mccuckoo

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTelemetryEndToEndSharded drives an instrumented sharded table through
// the full public surface — traffic, repair, snapshot corruption — and then
// scrapes the Prometheus endpoint, asserting every metric family ISSUE'd for
// this milestone is actually served.
func TestTelemetryEndToEndSharded(t *testing.T) {
	tel := NewTelemetry(WithEventBuffer(128))
	s, err := NewSharded(4096, 4, WithSeed(7), WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 2000; k++ {
		s.Insert(k, k*2)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Lookup(k)            // positive
		s.Lookup(k + 10_000_0) // negative
	}
	s.Delete(1)
	s.Repair()

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	metrics := string(body)
	for _, want := range []string{
		"mccuckoo_ops_total{op=\"insert\"}",
		"mccuckoo_ops_total{op=\"lookup\"}",
		"mccuckoo_ops_total{op=\"delete\"}",
		"mccuckoo_op_latency_seconds_bucket",
		"mccuckoo_kick_path_length_bucket",
		"mccuckoo_offchip_accesses_per_lookup_count{result=\"positive\"}",
		"mccuckoo_offchip_accesses_per_lookup_count{result=\"negative\"}",
		"mccuckoo_offchip_accesses_per_insert",
		"mccuckoo_copy_count_items{copies=\"1\"}",
		"mccuckoo_items",
		"mccuckoo_load_ratio",
		"mccuckoo_stash_len",
		"mccuckoo_stash_flag_density",
		"mccuckoo_autogrow_attempts_total",
		"mccuckoo_autogrow_success_total",
		"mccuckoo_autogrow_failures_total",
		"mccuckoo_repairs_total 1",
		"mccuckoo_corrupt_loads_total 0",
		"mccuckoo_shards 4",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/mccuckoo/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"counters"`, `"gauges"`, `"histograms"`, `"lookup_hits"`} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("/stats missing %q", want)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/mccuckoo/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(events), `"op"`) {
		t.Errorf("/events missing op field: %s", events)
	}
}

// TestTelemetryCorruptLoadCounted corrupts a snapshot byte and checks the
// rejected load shows up as mccuckoo_corrupt_loads_total.
func TestTelemetryCorruptLoadCounted(t *testing.T) {
	src, err := New(1024, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		src.Insert(k, k)
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff

	tel := NewTelemetry()
	if _, err := Load(bytes.NewReader(raw), WithTelemetry(tel)); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
	var out bytes.Buffer
	if err := tel.WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mccuckoo_corrupt_loads_total 1") {
		t.Fatalf("corrupt load not counted:\n%s", out.String())
	}
}

// TestTelemetrySingleTableSample checks the pushed-gauge path used by the
// single-writer kinds: SampleTelemetry publishes the current occupancy.
func TestTelemetrySingleTableSample(t *testing.T) {
	tel := NewTelemetry()
	tab, err := New(2048, WithSeed(5), WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 300; k++ {
		tab.Insert(k, k)
	}
	tab.SampleTelemetry()
	var out bytes.Buffer
	if err := tel.WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	metrics := out.String()
	if !strings.Contains(metrics, "mccuckoo_items 300") {
		t.Fatalf("items gauge not updated:\n%s", metrics)
	}
	if !strings.Contains(metrics, "mccuckoo_ops_total{op=\"insert\"} 300") {
		t.Fatalf("insert counter missing:\n%s", metrics)
	}

	b, err := NewBlocked(2048, WithSeed(5), WithTelemetry(NewTelemetry()))
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(1, 1)
	b.SampleTelemetry() // must not panic and must reflect the blocked table
}
