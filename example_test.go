package mccuckoo_test

import (
	"bytes"
	"fmt"
	"log"

	"mccuckoo"
)

// The basic lifecycle: create a table, insert, look up, delete.
func ExampleNew() {
	table, err := mccuckoo.New(3000, mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	table.Insert(42, 420)
	if v, ok := table.Lookup(42); ok {
		fmt.Println("found:", v)
	}
	fmt.Println("deleted:", table.Delete(42))
	_, ok := table.Lookup(42)
	fmt.Println("still there:", ok)
	// Output:
	// found: 420
	// deleted: true
	// still there: false
}

// The first item inserted into an empty table occupies all three of its
// candidate buckets — the multi-copy idea in one call.
func ExampleTable_Copies() {
	table, err := mccuckoo.New(3000, mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	table.Insert(7, 7)
	fmt.Println("items:", table.Len(), "physical copies:", table.Copies())
	// Output:
	// items: 1 physical copies: 3
}

// Deletion never writes to the main table: only the on-chip counters move.
func ExampleTable_Delete() {
	table, err := mccuckoo.New(3000, mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		table.Insert(k, k)
	}
	before := table.Traffic()
	for k := uint64(1); k <= 50; k++ {
		table.Delete(k)
	}
	after := table.Traffic()
	fmt.Println("off-chip writes during 50 deletions:", after.OffChipWrites-before.OffChipWrites)
	// Output:
	// off-chip writes during 50 deletions: 0
}

// Map adapts the table to arbitrary comparable key types.
func ExampleNewMap() {
	m, err := mccuckoo.NewMap[string, int](3000, mccuckoo.StringHasher, mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	m.Set("cuckoo", 2001)
	m.Set("mccuckoo", 2019)
	if year, ok := m.Get("mccuckoo"); ok {
		fmt.Println("published:", year)
	}
	fmt.Println("terms:", m.Len())
	// Output:
	// published: 2019
	// terms: 2
}

// MultiMap stores several values per key — the paper's multiset indexing
// pattern (§III.H).
func ExampleNewMultiMap() {
	postings, err := mccuckoo.NewMultiMap[string, int](3000, mccuckoo.StringHasher,
		mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	postings.Add("cuckoo", 10)
	postings.Add("cuckoo", 37)
	postings.Add("hash", 10)
	docs := postings.Get("cuckoo")
	fmt.Println("cuckoo appears in", len(docs), "documents")
	fmt.Println("total postings:", postings.Len())
	// Output:
	// cuckoo appears in 2 documents
	// total postings: 3
}

// Snapshots freeze the complete logical state; Load verifies invariants
// before returning the table.
func ExampleLoad() {
	table, err := mccuckoo.New(3000, mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(1); k <= 500; k++ {
		table.Insert(k, k*2)
	}
	var snapshot bytes.Buffer
	if _, err := table.WriteTo(&snapshot); err != nil {
		log.Fatal(err)
	}
	restored, err := mccuckoo.Load(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := restored.Lookup(123)
	fmt.Println("restored items:", restored.Len(), "lookup(123):", v)
	// Output:
	// restored items: 500 lookup(123): 246
}

// Concurrent provides the one-writer-many-readers mode: lookups proceed in
// parallel while one goroutine mutates.
func ExampleNewConcurrent() {
	inner, err := mccuckoo.New(3000, mccuckoo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	table := mccuckoo.NewConcurrent(inner)
	table.Insert(1, 100)
	done := make(chan bool)
	go func() {
		_, ok := table.Lookup(1) // safe alongside the writer
		done <- ok
	}()
	table.Insert(2, 200)
	fmt.Println("reader saw key 1:", <-done)
	fmt.Println("items:", table.Len())
	// Output:
	// reader saw key 1: true
	// items: 2
}
