package mccuckoo

import (
	"io"
	"net/http"

	"mccuckoo/internal/kv"
	"mccuckoo/internal/telemetry"
)

// Telemetry is the live observability surface of a table: atomic event
// counters, log2-bucketed histograms for per-op latency, kick-path length,
// and off-chip accesses per operation (lookups split positive/negative), the
// paper's copy-count distribution and stash gauges, and a flight-recorder
// ring of the last N operations. Attach one to a table with WithTelemetry
// and mount Handler on any HTTP server:
//
//	tel := mccuckoo.NewTelemetry()
//	table, _ := mccuckoo.NewSharded(1<<20, 16, mccuckoo.WithTelemetry(tel))
//	http.ListenAndServe(":8080", tel.Handler())
//	// curl localhost:8080/metrics
//
// Recording is lock-free and allocation-free; a table without telemetry pays
// one nil check per operation and allocates nothing (the disabled path is
// gated by benchmark in ci.sh).
//
// A Telemetry observes one table: attaching it to several merges their event
// streams but the gauges report only the last table attached.
type Telemetry struct {
	sink *telemetry.Sink
}

// TelemetryOption configures NewTelemetry.
type TelemetryOption func(*telemetry.Options)

// WithEventBuffer sets the flight-recorder capacity (rounded up to a power
// of two; default 1024).
func WithEventBuffer(n int) TelemetryOption {
	return func(o *telemetry.Options) { o.EventBuffer = n }
}

// NewTelemetry creates an enabled telemetry collector.
func NewTelemetry(opts ...TelemetryOption) *Telemetry {
	var o telemetry.Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Telemetry{sink: telemetry.New(o)}
}

// Handler returns the HTTP scrape surface:
//
//	/metrics                 Prometheus text exposition format
//	/debug/mccuckoo/stats    full JSON snapshot (gauges, counters, histograms)
//	/debug/mccuckoo/events   the flight recorder as a JSON array, oldest first
func (t *Telemetry) Handler() http.Handler { return t.sink.Handler() }

// WriteMetrics writes the Prometheus text exposition to w, for scrapeless
// use (tests, one-shot dumps).
func (t *Telemetry) WriteMetrics(w io.Writer) error { return t.sink.WritePrometheus(w) }

// Publish registers the telemetry snapshot under name in the process-wide
// expvar registry (visible at /debug/vars). Names must be process-unique;
// a duplicate returns an error.
func (t *Telemetry) Publish(name string) error { return t.sink.Publish(name) }

// WithTelemetry attaches tel to the table being built: every operation is
// recorded (counters, histograms, flight recorder) and the table's gauges
// back tel's exporters.
//
// For Sharded tables the gauges are live — every scrape reads the current
// state under the per-shard locks. Table and Blocked are single-writer
// structures that cannot be read concurrently, so their gauges are sampled:
// the owning goroutine calls SampleTelemetry whenever fresh gauge values
// should be visible to scrapes (histograms and counters are always live).
//
// The same option is accepted by the Load functions, where it additionally
// counts *CorruptError rejections in the corrupt-load counter.
func WithTelemetry(tel *Telemetry) Option {
	return func(c *config) error {
		c.tel = tel
		return nil
	}
}

// singleGauges assembles a gauge snapshot from a single-writer table's
// inspection surface. Must be called by the owning goroutine.
func singleGauges(t interface {
	Len() int
	Capacity() int
	LoadRatio() float64
	StashLen() int
	StashFlagDensity() float64
	CopyHistogram() []int
	Stats() Stats
}) telemetry.Gauges {
	hist := t.CopyHistogram()
	copyHist := make([]int64, len(hist))
	for v, n := range hist {
		copyHist[v] = int64(n)
	}
	st := t.Stats()
	return telemetry.Gauges{
		Items:            t.Len(),
		Capacity:         t.Capacity(),
		LoadRatio:        t.LoadRatio(),
		StashLen:         t.StashLen(),
		StashFlagDensity: t.StashFlagDensity(),
		CopyHist:         copyHist,
		Ops: kv.Stats{
			Inserts: st.Inserts, Updates: st.Updates, Kicks: st.Kicks,
			Stashed: st.Stashed, Failures: st.Failures, Lookups: st.Lookups,
			Hits: st.Hits, Deletes: st.Deletes, StashProbe: st.StashProbes,
			GrowAttempts: st.GrowAttempts, Grows: st.Grows, GrowFailures: st.GrowFailures,
		},
	}
}

// SampleTelemetry pushes the table's current gauge values (load, copy-count
// distribution, stash depth and flag density, lifetime stats) to the
// attached telemetry. Call it from the goroutine that owns the table —
// typically every few thousand operations, and once after a load phase.
// No-op without attached telemetry.
func (t *Table) SampleTelemetry() {
	if t.sink == nil {
		return
	}
	t.sink.StoreGauges(singleGauges(t))
}

// SampleTelemetry pushes the blocked table's gauge values; see
// Table.SampleTelemetry.
func (t *Blocked) SampleTelemetry() {
	if t.sink == nil {
		return
	}
	t.sink.StoreGauges(singleGauges(t))
}
