// Command mcperf records and checks performance baselines (DESIGN.md §14).
//
// Record a baseline (full scale; writes the versioned BENCH schema):
//
//	mcperf record -suite core -out BENCH_core.json
//	mcperf record -suite wire -out BENCH_wire.json -note "post zero-copy framing"
//
// Check the current tree against a committed baseline (ci.sh runs this at
// reduced scale on every pass; exit status 1 on any regression beyond the
// per-scale noise band, with a one-line verdict per series):
//
//	mcperf check -suite core -baseline BENCH_core.json -quick
//
// Show any BENCH file (legacy pre-schema files are described with a
// warning):
//
//	mcperf show BENCH_shard.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mccuckoo/internal/perfgate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mcperf: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mcperf record|check|show [flags] (see -h)")
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], out)
	case "check":
		return runCheck(args[1:], out)
	case "show":
		return runShow(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want record, check, or show)", args[0])
	}
}

// suiteFlags registers the flags shared by record and check.
func suiteFlags(fs *flag.FlagSet) (suite *string, quick *bool, ops, reps *int, scales *string, seed *uint64) {
	suite = fs.String("suite", "", "suite to run: core or wire (required)")
	quick = fs.Bool("quick", false, "reduced scale (the ci.sh gate configuration)")
	ops = fs.Int("ops", 0, "override iterations per rep")
	reps = fs.Int("reps", 0, "override rep count (best-of)")
	scales = fs.String("scales", "", "override scales, comma-separated (default 10,100,1000,10000)")
	seed = fs.Uint64("seed", 0, "override base seed (default 1)")
	return
}

func buildOptions(quick bool, ops, reps int, scales string, seed uint64) (perfgate.SuiteOptions, error) {
	o := perfgate.DefaultSuiteOptions()
	if quick {
		o = perfgate.QuickSuiteOptions()
	}
	if ops > 0 {
		o.Ops = ops
	}
	if reps > 0 {
		o.Reps = reps
	}
	if seed != 0 {
		o.Seed = seed
	}
	if scales != "" {
		o.Scales = o.Scales[:0]
		for _, p := range strings.Split(scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return o, fmt.Errorf("-scales: bad value %q", p)
			}
			o.Scales = append(o.Scales, v)
		}
	}
	return o, nil
}

func runSuite(name string, o perfgate.SuiteOptions) (*perfgate.Report, error) {
	suite, ok := perfgate.Suites[name]
	if !ok {
		names := make([]string, 0, len(perfgate.Suites))
		for n := range perfgate.Suites {
			names = append(names, n)
		}
		return nil, fmt.Errorf("unknown suite %q (have: %s)", name, strings.Join(names, ", "))
	}
	return suite(o)
}

func runRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcperf record", flag.ContinueOnError)
	suite, quick, ops, reps, scales, seed := suiteFlags(fs)
	outPath := fs.String("out", "", "output BENCH file (required)")
	note := fs.String("note", "", "free-form note appended to the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" || *outPath == "" {
		return fmt.Errorf("record: -suite and -out are required")
	}
	o, err := buildOptions(*quick, *ops, *reps, *scales, *seed)
	if err != nil {
		return err
	}
	r, err := runSuite(*suite, o)
	if err != nil {
		return err
	}
	if *note != "" {
		r.Notes = append(r.Notes, *note)
	}
	if err := r.WriteFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d series to %s (schema v%d, %s, %d CPU / GOMAXPROCS %d)\n",
		len(r.Series), *outPath, r.SchemaVersion, r.Environment.Go,
		r.Environment.CPUs, r.Environment.GOMAXPROCS)
	return nil
}

func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcperf check", flag.ContinueOnError)
	suite, quick, ops, reps, scales, seed := suiteFlags(fs)
	basePath := fs.String("baseline", "", "baseline BENCH file to compare against (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" || *basePath == "" {
		return fmt.Errorf("check: -suite and -baseline are required")
	}
	baseline, err := perfgate.Load(*basePath)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	o, err := buildOptions(*quick, *ops, *reps, *scales, *seed)
	if err != nil {
		return err
	}
	current, err := runSuite(*suite, o)
	if err != nil {
		return err
	}
	verdicts, err := perfgate.Compare(baseline, current)
	if err != nil {
		return err
	}
	for _, sv := range verdicts {
		fmt.Fprintln(out, sv.Line())
	}
	if bad := perfgate.Failing(verdicts); len(bad) > 0 {
		return fmt.Errorf("check: %d of %d series failed the gate against %s (refresh deliberately with REFRESH_BASELINE=1 ./ci.sh)",
			len(bad), len(verdicts), *basePath)
	}
	fmt.Fprintf(out, "perf gate clean: %d series vs %s (recorded %s)\n", len(verdicts), *basePath, baseline.Recorded)
	return nil
}

func runShow(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mcperf show <BENCH file>")
	}
	r, err := perfgate.Load(args[0])
	var legacy *perfgate.LegacyError
	if err != nil {
		le, ok := err.(*perfgate.LegacyError)
		if !ok {
			return err
		}
		legacy = le
	}
	fmt.Fprintf(out, "%s: schema v%d, benchmark %q, recorded %s\n", args[0], r.SchemaVersion, r.Benchmark, r.Recorded)
	if legacy != nil {
		fmt.Fprintf(out, "warning: %v\n", legacy)
		return nil
	}
	for _, s := range r.Series {
		fmt.Fprintf(out, "  %-32s %10.1f ns/op  %8.3f allocs/op  (n=%d, %d x %d ops)\n",
			s.Name, s.NsPerOp, s.AllocsPerOp, s.Scale, s.Reps, s.Ops)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(out, "  note: %s\n", n)
	}
	return nil
}
