package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mccuckoo"
	"mccuckoo/internal/cluster"
	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Error("bad subcommand accepted")
	}
	if err := run([]string{"gen"}, &sb); err == nil {
		t.Error("gen without -out accepted")
	}
	if err := run([]string{"replay"}, &sb); err == nil {
		t.Error("replay without -in accepted")
	}
	if err := run([]string{"gen", "-out", "x", "-mix", "garbage"}, &sb); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestGenReplayRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "ops.trace")
	var sb strings.Builder
	err := run([]string{"gen", "-out", trace, "-ops", "20000", "-keyspace", "3000",
		"-mix", "3:5:1", "-negshare", "0.25", "-seed", "9"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 20000 ops") {
		t.Fatalf("gen output: %s", sb.String())
	}
	for _, scheme := range []string{"cuckoo", "mccuckoo", "bcht", "bmccuckoo"} {
		var rb strings.Builder
		err := run([]string{"replay", "-in", trace, "-scheme", scheme,
			"-capacity", "9000", "-seed", "4"}, &rb)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		out := rb.String()
		for _, want := range []string{"replayed 20000 ops", "final:", "traffic:",
			"phase insert:", "phase lookup:", "phase delete:"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", scheme, want, out)
			}
		}
	}
	var rb strings.Builder
	if err := run([]string{"replay", "-in", trace, "-scheme", "nope"}, &rb); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestReplayDeterministicAcrossSchemesTraffic(t *testing.T) {
	// The same trace replayed twice against the same scheme must print
	// byte-identical output (modulo the wall-clock line).
	trace := filepath.Join(t.TempDir(), "det.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "5000", "-keyspace", "800"}, &sb); err != nil {
		t.Fatal(err)
	}
	replay := func() string {
		var rb strings.Builder
		if err := run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
			"-capacity", "3000"}, &rb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(rb.String(), "\n")
		return strings.Join(lines[1:], "\n") // drop the timing line
	}
	if a, b := replay(), replay(); a != b {
		t.Fatalf("replays differ:\n%s\nvs\n%s", a, b)
	}
}

func TestReplayFailedInsertsExitNonZero(t *testing.T) {
	// An insert-only trace into a tiny table with a one-slot stash must
	// overflow; the replay reports the failures and returns an error so the
	// process exits non-zero.
	trace := filepath.Join(t.TempDir(), "full.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "300", "-keyspace", "300",
		"-mix", "1:0:0", "-seed", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	var rb strings.Builder
	err := run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
		"-capacity", "60", "-stashmax", "1", "-seed", "1"}, &rb)
	if err == nil {
		t.Fatalf("overfull replay returned nil error:\n%s", rb.String())
	}
	if !strings.Contains(err.Error(), "inserts failed outright") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(rb.String(), "failed inserts") {
		t.Fatalf("summary missing failure count:\n%s", rb.String())
	}
}

// replayNode is one in-process cluster member for the traced replay smoke:
// a replicated store served over TCP with a span recorder, subscribed to
// the other node's op log — what two `mcserved -peers -trace` processes
// would be.
type replayNode struct {
	rec *trace.Recorder
	srv *wire.Server
	r   *cluster.Replicator
}

func startReplayNode(t *testing.T, addr string, nodes []string, ringSeed uint64) *replayNode {
	t.Helper()
	tab, err := mccuckoo.NewSharded(1<<12, 4, mccuckoo.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	rep := wire.NewReplicated(tab, wire.ReplicaConfig{})
	rec := trace.New(trace.Options{Sample: 1})
	srv, err := wire.NewServer(wire.Config{Store: rep, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	r, err := cluster.NewReplicator(rep, cluster.ReplicatorConfig{
		Self:      addr,
		Nodes:     nodes,
		Replicas:  2,
		Seed:      ringSeed,
		RetryBase: 10 * time.Millisecond,
		Trace:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	n := &replayNode{rec: rec, srv: srv, r: r}
	t.Cleanup(func() {
		n.r.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		n.srv.Shutdown(ctx)
	})
	return n
}

// TestTracedClusterReplaySmoke replays a small traced run against a live
// two-node replicated pair and asserts the tracing tentpole end to end: the
// summary reports per-op span statistics and slowest trees, and at least
// one trace started by the replay client reached BOTH nodes — a cross-node
// span tree, reassembled here from the two server-side flight recorders.
func TestTracedClusterReplaySmoke(t *testing.T) {
	const ringSeed = 7
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	nodes := make([]*replayNode, 2)
	for i, addr := range addrs {
		nodes[i] = startReplayNode(t, addr, addrs, ringSeed)
	}

	tracePath := filepath.Join(t.TempDir(), "cluster.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", tracePath, "-ops", "600", "-keyspace", "150",
		"-mix", "3:5:1", "-seed", "11"}, &sb); err != nil {
		t.Fatal(err)
	}
	var rb strings.Builder
	err := run([]string{"replay", "-in", tracePath,
		"-nodes", strings.Join(addrs, ","), "-replicas", "2", "-quorum", "2",
		"-seed", "7", "-trace", "-tracesample", "1", "-tracetop", "2"}, &rb)
	if err != nil {
		t.Fatalf("cluster replay: %v\n%s", err, rb.String())
	}
	outStr := rb.String()
	for _, want := range []string{"against cluster", "trace put:", "trace get:", "slowest 2 of"} {
		if !strings.Contains(outStr, want) {
			t.Errorf("replay output missing %q:\n%s", want, outStr)
		}
	}

	// Cross-node span tree: with R=2 over two nodes every write fans to
	// both, so some trace id must appear in both flight recorders, carried
	// there by the wire protocol's context prefix (Hop 1 on arrival).
	ids := func(n *replayNode) map[uint64]bool {
		m := map[uint64]bool{}
		for _, sp := range n.rec.Spans() {
			if sp.Kind == trace.KindServerOp && sp.Hop == 1 {
				m[sp.TraceID] = true
			}
		}
		return m
	}
	a, b := ids(nodes[0]), ids(nodes[1])
	shared := uint64(0)
	for id := range a {
		if b[id] {
			shared = id
			break
		}
	}
	if shared == 0 {
		t.Fatalf("no trace id reached both nodes (%d vs %d server traces)", len(a), len(b))
	}
	all := append(nodes[0].rec.Spans(), nodes[1].rec.Spans()...)
	var cross []trace.Span
	for _, sp := range all {
		if sp.TraceID == shared {
			cross = append(cross, sp)
		}
	}
	trees := trace.Trees(cross)
	if len(trees) < 2 {
		t.Fatalf("expected server-side trees on both nodes for trace %016x, got %d", shared, len(trees))
	}
}

// syncBuffer lets the test read replay output while run() is still writing it
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestReplayServesMetrics(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "m.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "2000", "-keyspace", "500"}, &sb); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
			"-capacity", "2000", "-metrics", "127.0.0.1:0", "-linger", "2s"}, &out)
	}()

	addrRE := regexp.MustCompile(`serving metrics on http://([^/\s]+)/metrics`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("metrics address never printed:\n%s", out.String())
	}
	// Scrape during the linger window; the replay has finished by the time
	// the phase summaries print, but the listener stays up.
	var body string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(raw)
			if strings.Contains(body, "mccuckoo_ops_total") {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(body, "mccuckoo_ops_total") {
		t.Fatalf("scrape missing mccuckoo_ops_total:\n%.2000s", body)
	}
	if err := <-done; err != nil {
		t.Fatalf("replay failed: %v", err)
	}
}
