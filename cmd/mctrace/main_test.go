package main

import (
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Error("bad subcommand accepted")
	}
	if err := run([]string{"gen"}, &sb); err == nil {
		t.Error("gen without -out accepted")
	}
	if err := run([]string{"replay"}, &sb); err == nil {
		t.Error("replay without -in accepted")
	}
	if err := run([]string{"gen", "-out", "x", "-mix", "garbage"}, &sb); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestGenReplayRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "ops.trace")
	var sb strings.Builder
	err := run([]string{"gen", "-out", trace, "-ops", "20000", "-keyspace", "3000",
		"-mix", "3:5:1", "-negshare", "0.25", "-seed", "9"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 20000 ops") {
		t.Fatalf("gen output: %s", sb.String())
	}
	for _, scheme := range []string{"cuckoo", "mccuckoo", "bcht", "bmccuckoo"} {
		var rb strings.Builder
		err := run([]string{"replay", "-in", trace, "-scheme", scheme,
			"-capacity", "9000", "-seed", "4"}, &rb)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		out := rb.String()
		for _, want := range []string{"replayed 20000 ops", "final:", "traffic:",
			"phase insert:", "phase lookup:", "phase delete:"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", scheme, want, out)
			}
		}
	}
	var rb strings.Builder
	if err := run([]string{"replay", "-in", trace, "-scheme", "nope"}, &rb); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestReplayDeterministicAcrossSchemesTraffic(t *testing.T) {
	// The same trace replayed twice against the same scheme must print
	// byte-identical output (modulo the wall-clock line).
	trace := filepath.Join(t.TempDir(), "det.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "5000", "-keyspace", "800"}, &sb); err != nil {
		t.Fatal(err)
	}
	replay := func() string {
		var rb strings.Builder
		if err := run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
			"-capacity", "3000"}, &rb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(rb.String(), "\n")
		return strings.Join(lines[1:], "\n") // drop the timing line
	}
	if a, b := replay(), replay(); a != b {
		t.Fatalf("replays differ:\n%s\nvs\n%s", a, b)
	}
}

func TestReplayFailedInsertsExitNonZero(t *testing.T) {
	// An insert-only trace into a tiny table with a one-slot stash must
	// overflow; the replay reports the failures and returns an error so the
	// process exits non-zero.
	trace := filepath.Join(t.TempDir(), "full.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "300", "-keyspace", "300",
		"-mix", "1:0:0", "-seed", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	var rb strings.Builder
	err := run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
		"-capacity", "60", "-stashmax", "1", "-seed", "1"}, &rb)
	if err == nil {
		t.Fatalf("overfull replay returned nil error:\n%s", rb.String())
	}
	if !strings.Contains(err.Error(), "inserts failed outright") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(rb.String(), "failed inserts") {
		t.Fatalf("summary missing failure count:\n%s", rb.String())
	}
}

// syncBuffer lets the test read replay output while run() is still writing it
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestReplayServesMetrics(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "m.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "2000", "-keyspace", "500"}, &sb); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
			"-capacity", "2000", "-metrics", "127.0.0.1:0", "-linger", "2s"}, &out)
	}()

	addrRE := regexp.MustCompile(`serving metrics on http://([^/\s]+)/metrics`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("metrics address never printed:\n%s", out.String())
	}
	// Scrape during the linger window; the replay has finished by the time
	// the phase summaries print, but the listener stays up.
	var body string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(raw)
			if strings.Contains(body, "mccuckoo_ops_total") {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(body, "mccuckoo_ops_total") {
		t.Fatalf("scrape missing mccuckoo_ops_total:\n%.2000s", body)
	}
	if err := <-done; err != nil {
		t.Fatalf("replay failed: %v", err)
	}
}
