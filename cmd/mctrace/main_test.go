package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Error("bad subcommand accepted")
	}
	if err := run([]string{"gen"}, &sb); err == nil {
		t.Error("gen without -out accepted")
	}
	if err := run([]string{"replay"}, &sb); err == nil {
		t.Error("replay without -in accepted")
	}
	if err := run([]string{"gen", "-out", "x", "-mix", "garbage"}, &sb); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestGenReplayRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "ops.trace")
	var sb strings.Builder
	err := run([]string{"gen", "-out", trace, "-ops", "20000", "-keyspace", "3000",
		"-mix", "3:5:1", "-negshare", "0.25", "-seed", "9"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 20000 ops") {
		t.Fatalf("gen output: %s", sb.String())
	}
	for _, scheme := range []string{"cuckoo", "mccuckoo", "bcht", "bmccuckoo"} {
		var rb strings.Builder
		err := run([]string{"replay", "-in", trace, "-scheme", scheme,
			"-capacity", "9000", "-seed", "4"}, &rb)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		out := rb.String()
		for _, want := range []string{"replayed 20000 ops", "final:", "traffic:"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", scheme, want, out)
			}
		}
	}
	var rb strings.Builder
	if err := run([]string{"replay", "-in", trace, "-scheme", "nope"}, &rb); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestReplayDeterministicAcrossSchemesTraffic(t *testing.T) {
	// The same trace replayed twice against the same scheme must print
	// byte-identical output (modulo the wall-clock line).
	trace := filepath.Join(t.TempDir(), "det.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-out", trace, "-ops", "5000", "-keyspace", "800"}, &sb); err != nil {
		t.Fatal(err)
	}
	replay := func() string {
		var rb strings.Builder
		if err := run([]string{"replay", "-in", trace, "-scheme", "mccuckoo",
			"-capacity", "3000"}, &rb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(rb.String(), "\n")
		return strings.Join(lines[1:], "\n") // drop the timing line
	}
	if a, b := replay(), replay(); a != b {
		t.Fatalf("replays differ:\n%s\nvs\n%s", a, b)
	}
}
