// Command mctrace generates and replays frozen workload traces, the role
// the DocWords dataset file plays in the paper's evaluation: a trace on disk
// makes an experiment reproducible bit-for-bit across machines and runs.
//
// Generate a mixed trace:
//
//	mctrace gen -out ops.trace -ops 1000000 -keyspace 200000 \
//	        -mix 2:6:1 -negshare 0.2 -seed 1
//
// Replay it against a scheme and report throughput plus memory traffic:
//
//	mctrace replay -in ops.trace -scheme mccuckoo -capacity 300000
//
// Schemes: cuckoo, mccuckoo, bcht, bmccuckoo replay against the internal
// experiment tables with full memory-traffic accounting. Two more schemes,
// sharded and concurrent, replay against the public thread-safe kinds
// through the mccuckoo.Store interface — the exact surface mcserved serves
// — so a trace can be validated against what a network client would see.
// The public API hides the memory meter, so the traffic lines of those two
// schemes read zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"mccuckoo"
	"mccuckoo/internal/core"
	"mccuckoo/internal/cuckoo"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/telemetry"
	"mccuckoo/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mctrace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mctrace gen|replay [flags] (see -h)")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or replay)", args[0])
	}
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mctrace gen", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "output trace file (required)")
		ops      = fs.Int("ops", 1_000_000, "number of operations")
		keySpace = fs.Int("keyspace", 200_000, "distinct keys drawn from")
		mix      = fs.String("mix", "2:6:1", "insert:lookup:delete weights")
		negShare = fs.Float64("negshare", 0.2, "fraction of lookups on absent keys")
		seed     = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var wi, wl, wd float64
	if _, err := fmt.Sscanf(*mix, "%f:%f:%f", &wi, &wl, &wd); err != nil {
		return fmt.Errorf("gen: bad -mix %q: %w", *mix, err)
	}
	stream, err := workload.Mix(workload.MixConfig{
		Seed: *seed, Ops: *ops, KeySpace: *keySpace,
		InsertWeight: wi, LookupWeight: wl, DeleteWeight: wd,
		NegativeShare: *negShare,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := workload.WriteTrace(f, stream); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	counts := map[workload.OpKind]int{}
	for _, op := range stream {
		counts[op.Kind]++
	}
	fmt.Fprintf(out, "wrote %d ops to %s (insert %d, lookup %d, delete %d)\n",
		len(stream), *outPath, counts[workload.OpInsert], counts[workload.OpLookup], counts[workload.OpDelete])
	return nil
}

// gaugeSampleEvery is how often (in replayed ops) the telemetry gauges are
// refreshed when -metrics is serving.
const gaugeSampleEvery = 1 << 16

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mctrace replay", flag.ContinueOnError)
	var (
		inPath   = fs.String("in", "", "input trace file (required)")
		scheme   = fs.String("scheme", "mccuckoo", "cuckoo|mccuckoo|bcht|bmccuckoo|sharded|concurrent")
		capacity = fs.Int("capacity", 300_000, "table capacity in slots")
		shards   = fs.Int("shards", 8, "shard count for -scheme sharded")
		maxloop  = fs.Int("maxloop", 500, "kick chain bound")
		seed     = fs.Uint64("seed", 1, "table seed")
		stashMax = fs.Int("stashmax", 0, "cap the stash population (0 = unbounded); inserts beyond the cap fail and make the replay exit non-zero")
		metrics  = fs.String("metrics", "", "serve telemetry on this address (/metrics, /debug/mccuckoo/*) during the replay")
		linger   = fs.Duration("linger", 0, "keep serving -metrics this long after the replay finishes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("replay: -in is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	stream, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	tab, err := buildScheme(*scheme, *capacity, *maxloop, *seed, *stashMax, *shards)
	if err != nil {
		return err
	}

	var sink *telemetry.Sink
	if *metrics != "" {
		sink = telemetry.New(telemetry.Options{})
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("replay: -metrics: %w", err)
		}
		srv := &http.Server{Handler: sink.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", ln.Addr())
	}

	// The meter is snapshotted around every operation and the delta is
	// credited to that operation's phase, so the summary can report the
	// paper's per-op access counts separately for the insert and the query
	// (lookup/delete) phases of the trace.
	meter := tab.Meter()
	var phases [3]memmodel.Meter
	var counts [3]int
	prev := meter.Snapshot()

	start := time.Now()
	var hits, misses, failed int64
	for i, op := range stream {
		var (
			opStart time.Time
			ev      telemetry.Event
		)
		if sink != nil {
			opStart = time.Now()
			ev = telemetry.Event{Shard: -1, KeyHash: hashutil.Mix64(op.Key)}
		}
		switch op.Kind {
		case workload.OpInsert:
			o := tab.Insert(op.Key, op.Key)
			if o.Status == kv.Failed {
				failed++
			}
			ev.Op, ev.Status, ev.Kicks = telemetry.OpInsert, uint8(o.Status), int32(o.Kicks)
		case workload.OpLookup:
			_, ok := tab.Lookup(op.Key)
			if ok {
				hits++
			} else {
				misses++
			}
			ev.Op, ev.Hit = telemetry.OpLookup, ok
		case workload.OpDelete:
			ev.Op, ev.Hit = telemetry.OpDelete, tab.Delete(op.Key)
		}
		cur := meter.Snapshot()
		d := cur.Sub(prev)
		prev = cur
		phases[op.Kind] = phases[op.Kind].Add(d)
		counts[op.Kind]++
		if sink != nil {
			ev.OffChip = d.OffChipReads + d.OffChipWrites
			ev.Nanos = time.Since(opStart).Nanoseconds()
			sink.Record(ev)
			if (i+1)%gaugeSampleEvery == 0 {
				sink.StoreGauges(replayGauges(tab))
			}
		}
	}
	elapsed := time.Since(start)
	if sink != nil {
		sink.StoreGauges(replayGauges(tab))
	}

	st := tab.Stats()
	m := tab.Meter().Snapshot()
	fmt.Fprintf(out, "replayed %d ops in %v (%.2f Mops/s) against %s\n",
		len(stream), elapsed.Round(time.Millisecond),
		float64(len(stream))/elapsed.Seconds()/1e6, *scheme)
	fmt.Fprintf(out, "final: %d items at %.1f%% load, %d stashed, %d failed inserts\n",
		tab.Len(), tab.LoadRatio()*100, tab.StashLen(), failed)
	fmt.Fprintf(out, "lookups: %d hits, %d misses; stash probed %d times\n",
		hits, misses, st.StashProbe)
	fmt.Fprintf(out, "traffic: %.3f off-chip reads/op, %.3f writes/op, %.3f counter accesses/op\n",
		perOp(m.OffChipReads, len(stream)), perOp(m.OffChipWrites, len(stream)),
		perOp(m.OnChipReads+m.OnChipWrites, len(stream)))
	phaseNames := [3]string{workload.OpInsert: "insert", workload.OpLookup: "lookup", workload.OpDelete: "delete"}
	for kind, name := range phaseNames {
		n, ph := counts[kind], phases[kind]
		if n == 0 {
			continue
		}
		fmt.Fprintf(out, "phase %s: %d ops, %.3f off-chip reads/op, %.3f writes/op, %.3f counter accesses/op\n",
			name, n, perOp(ph.OffChipReads, n), perOp(ph.OffChipWrites, n),
			perOp(ph.OnChipReads+ph.OnChipWrites, n))
	}
	if *metrics != "" && *linger > 0 {
		fmt.Fprintf(out, "lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	if failed > 0 {
		return fmt.Errorf("replay: %d of %d inserts failed outright", failed, counts[workload.OpInsert])
	}
	return nil
}

// replayGauges samples the table for the telemetry gauges. The kv.Table
// interface covers the basics; the copy histogram and stash-flag density are
// picked up when the scheme provides them (the McCuckoo tables do, the
// baselines do not).
func replayGauges(tab kv.Table) telemetry.Gauges {
	g := telemetry.Gauges{
		Items:     tab.Len(),
		Capacity:  tab.Capacity(),
		LoadRatio: tab.LoadRatio(),
		StashLen:  tab.StashLen(),
		Ops:       tab.Stats(),
	}
	if ch, ok := tab.(interface{ CopyHistogram() []int }); ok {
		hist := ch.CopyHistogram()
		g.CopyHist = make([]int64, len(hist))
		for v, n := range hist {
			g.CopyHist[v] = int64(n)
		}
	}
	if sf, ok := tab.(interface{ StashFlagDensity() float64 }); ok {
		g.StashFlagDensity = sf.StashFlagDensity()
	}
	return g
}

func perOp(n int64, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return float64(n) / float64(ops)
}

// buildScheme constructs one of the evaluated tables. Upsert semantics are
// kept (traces may re-insert live keys). The sharded and concurrent schemes
// go through the public Store interface via storeTable.
func buildScheme(name string, capacity, maxLoop int, seed uint64, stashMax, shards int) (kv.Table, error) {
	pubOpts := []mccuckoo.Option{mccuckoo.WithSeed(seed), mccuckoo.WithMaxLoop(maxLoop)}
	if stashMax > 0 {
		pubOpts = append(pubOpts, mccuckoo.WithStashLimit(stashMax))
	}
	switch strings.ToLower(name) {
	case "sharded":
		s, err := mccuckoo.NewSharded(capacity, shards, pubOpts...)
		if err != nil {
			return nil, err
		}
		return &storeTable{s: s}, nil
	case "concurrent":
		t, err := mccuckoo.New(capacity, pubOpts...)
		if err != nil {
			return nil, err
		}
		return &storeTable{s: mccuckoo.NewConcurrent(t)}, nil
	case "cuckoo":
		return cuckoo.New(cuckoo.Config{
			D: 3, Slots: 1, BucketsPerTable: capacity / 3,
			MaxLoop: maxLoop, Seed: seed, StashEnabled: true, StashMax: stashMax,
		})
	case "bcht":
		return cuckoo.New(cuckoo.Config{
			D: 3, Slots: 3, BucketsPerTable: capacity / 9,
			MaxLoop: maxLoop, Seed: seed, StashEnabled: true, StashMax: stashMax,
		})
	case "mccuckoo":
		return core.New(core.Config{
			D: 3, BucketsPerTable: capacity / 3,
			MaxLoop: maxLoop, Seed: seed, StashEnabled: true, StashMax: stashMax,
		})
	case "bmccuckoo":
		return core.NewBlocked(core.Config{
			D: 3, Slots: 3, BucketsPerTable: capacity / 9,
			MaxLoop: maxLoop, Seed: seed, StashEnabled: true, StashMax: stashMax,
		})
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

// storeTable adapts a public mccuckoo.Store to the kv.Table surface the
// replay loop drives. The public interface deliberately hides the
// memory-traffic meter, so Meter returns a meter that never moves and the
// replay's traffic lines read zero for these schemes; throughput, load,
// and operation statistics are fully reported.
type storeTable struct {
	s     mccuckoo.Store
	meter memmodel.Meter
}

func (t *storeTable) Insert(key, value uint64) kv.Outcome {
	r := t.s.Insert(key, value)
	return kv.Outcome{Status: kv.Status(r.Status), Kicks: r.Kicks}
}

func (t *storeTable) Lookup(key uint64) (uint64, bool) { return t.s.Lookup(key) }
func (t *storeTable) Delete(key uint64) bool           { return t.s.Delete(key) }
func (t *storeTable) Len() int                         { return t.s.Len() }
func (t *storeTable) Capacity() int                    { return t.s.Capacity() }
func (t *storeTable) LoadRatio() float64               { return t.s.LoadRatio() }
func (t *storeTable) StashLen() int                    { return t.s.StashLen() }
func (t *storeTable) Meter() *memmodel.Meter           { return &t.meter }

func (t *storeTable) Stats() kv.Stats {
	st := t.s.Stats()
	return kv.Stats{
		Inserts: st.Inserts, Updates: st.Updates, Kicks: st.Kicks,
		Stashed: st.Stashed, Failures: st.Failures, Lookups: st.Lookups,
		Hits: st.Hits, Deletes: st.Deletes, StashProbe: st.StashProbes,
		GrowAttempts: st.GrowAttempts, Grows: st.Grows, GrowFailures: st.GrowFailures,
	}
}
