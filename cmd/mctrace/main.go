// Command mctrace generates and replays frozen workload traces, the role
// the DocWords dataset file plays in the paper's evaluation: a trace on disk
// makes an experiment reproducible bit-for-bit across machines and runs.
//
// Generate a mixed trace:
//
//	mctrace gen -out ops.trace -ops 1000000 -keyspace 200000 \
//	        -mix 2:6:1 -negshare 0.2 -seed 1
//
// Replay it against a scheme and report throughput plus memory traffic:
//
//	mctrace replay -in ops.trace -scheme mccuckoo -capacity 300000
//
// Schemes: cuckoo, mccuckoo, bcht, bmccuckoo replay against the internal
// experiment tables with full memory-traffic accounting. Two more schemes,
// sharded and concurrent, replay against the public thread-safe kinds
// through the mccuckoo.Store interface — the exact surface mcserved serves
// — so a trace can be validated against what a network client would see.
// The public API hides the memory meter, so the traffic lines of those two
// schemes read zero.
//
// With -nodes the replay instead drives a live mcserved cluster through the
// replicated client (writes fan to -replicas copies with a -quorum ack
// requirement), and -trace records distributed request spans: the summary
// then includes per-operation span statistics and the slowest -tracetop
// requests rendered as span trees, each tree stitching the client fan-out
// to the per-replica round trips:
//
//	mctrace replay -in ops.trace -nodes 10.0.0.1:7466,10.0.0.2:7466 \
//	        -replicas 2 -quorum 2 -trace -tracetop 5
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mccuckoo/internal/bench"
	"mccuckoo/internal/cluster"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/telemetry"
	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mctrace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mctrace gen|replay [flags] (see -h)")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or replay)", args[0])
	}
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mctrace gen", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "output trace file (required)")
		ops      = fs.Int("ops", 1_000_000, "number of operations")
		keySpace = fs.Int("keyspace", 200_000, "distinct keys drawn from")
		mix      = fs.String("mix", "2:6:1", "insert:lookup:delete weights")
		negShare = fs.Float64("negshare", 0.2, "fraction of lookups on absent keys")
		seed     = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var wi, wl, wd float64
	if _, err := fmt.Sscanf(*mix, "%f:%f:%f", &wi, &wl, &wd); err != nil {
		return fmt.Errorf("gen: bad -mix %q: %w", *mix, err)
	}
	stream, err := workload.Mix(workload.MixConfig{
		Seed: *seed, Ops: *ops, KeySpace: *keySpace,
		InsertWeight: wi, LookupWeight: wl, DeleteWeight: wd,
		NegativeShare: *negShare,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := workload.WriteTrace(f, stream); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	counts := map[workload.OpKind]int{}
	for _, op := range stream {
		counts[op.Kind]++
	}
	fmt.Fprintf(out, "wrote %d ops to %s (insert %d, lookup %d, delete %d)\n",
		len(stream), *outPath, counts[workload.OpInsert], counts[workload.OpLookup], counts[workload.OpDelete])
	return nil
}

// gaugeSampleEvery is how often (in replayed ops) the telemetry gauges are
// refreshed when -metrics is serving.
const gaugeSampleEvery = 1 << 16

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mctrace replay", flag.ContinueOnError)
	var cc bench.CLIConfig
	cc.RegisterCommon(fs, 300_000, "table capacity in slots")
	cc.RegisterReplay(fs)
	var (
		inPath   = fs.String("in", "", "input trace file (required)")
		scheme   = fs.String("scheme", "mccuckoo", "cuckoo|mccuckoo|bcht|bmccuckoo|sharded|concurrent")
		metrics  = fs.String("metrics", "", "serve telemetry on this address (/metrics, /debug/mccuckoo/*) during the replay")
		linger   = fs.Duration("linger", 0, "keep serving -metrics this long after the replay finishes")
		nodes    = fs.String("nodes", "", "comma-separated mcserved addresses: replay over the cluster client instead of in-process (-scheme is ignored; -seed doubles as the ring seed)")
		replicas = fs.Int("replicas", 2, "cluster copies per key (needs -nodes; must match the nodes)")
		quorum   = fs.Int("quorum", 1, "write quorum W (needs -nodes)")
		vnodes   = fs.Int("vnodes", 0, "ring virtual nodes (needs -nodes; must match the nodes)")
		traceOn  = fs.Bool("trace", false, "record client-side request spans during a -nodes replay")
		traceSmp = fs.Int("tracesample", 1, "head-sample 1 in N traces (needs -trace)")
		traceSlw = fs.Duration("traceslow", 0, "also capture ops slower than this even when unsampled (needs -trace; 0 disables)")
		traceTop = fs.Int("tracetop", 3, "span trees to print for the slowest sampled requests (needs -trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cc.Validate(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if *inPath == "" {
		return fmt.Errorf("replay: -in is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	stream, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	if *nodes != "" {
		return runClusterReplay(stream, clusterReplayConfig{
			nodes:    *nodes,
			replicas: *replicas,
			quorum:   *quorum,
			vnodes:   *vnodes,
			seed:     cc.Seed,
			traceOn:  *traceOn,
			sample:   *traceSmp,
			slow:     *traceSlw,
			top:      *traceTop,
		}, out)
	}
	tab, err := cc.BuildScheme(*scheme)
	if err != nil {
		return err
	}

	var sink *telemetry.Sink
	if *metrics != "" {
		sink = telemetry.New(telemetry.Options{})
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("replay: -metrics: %w", err)
		}
		srv := &http.Server{Handler: sink.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", ln.Addr())
	}

	// The meter is snapshotted around every operation and the delta is
	// credited to that operation's phase, so the summary can report the
	// paper's per-op access counts separately for the insert and the query
	// (lookup/delete) phases of the trace.
	meter := tab.Meter()
	var phases [3]memmodel.Meter
	var counts [3]int
	prev := meter.Snapshot()

	start := time.Now()
	var hits, misses, failed int64
	for i, op := range stream {
		var (
			opStart time.Time
			ev      telemetry.Event
		)
		if sink != nil {
			opStart = time.Now()
			ev = telemetry.Event{Shard: -1, KeyHash: hashutil.Mix64(op.Key)}
		}
		switch op.Kind {
		case workload.OpInsert:
			o := tab.Insert(op.Key, op.Key)
			if o.Status == kv.Failed {
				failed++
			}
			ev.Op, ev.Status, ev.Kicks = telemetry.OpInsert, uint8(o.Status), int32(o.Kicks)
		case workload.OpLookup:
			_, ok := tab.Lookup(op.Key)
			if ok {
				hits++
			} else {
				misses++
			}
			ev.Op, ev.Hit = telemetry.OpLookup, ok
		case workload.OpDelete:
			ev.Op, ev.Hit = telemetry.OpDelete, tab.Delete(op.Key)
		}
		cur := meter.Snapshot()
		d := cur.Sub(prev)
		prev = cur
		phases[op.Kind] = phases[op.Kind].Add(d)
		counts[op.Kind]++
		if sink != nil {
			ev.OffChip = d.OffChipReads + d.OffChipWrites
			ev.Nanos = time.Since(opStart).Nanoseconds()
			sink.Record(ev)
			if (i+1)%gaugeSampleEvery == 0 {
				sink.StoreGauges(replayGauges(tab))
			}
		}
	}
	elapsed := time.Since(start)
	if sink != nil {
		sink.StoreGauges(replayGauges(tab))
	}

	st := tab.Stats()
	m := tab.Meter().Snapshot()
	fmt.Fprintf(out, "replayed %d ops in %v (%.2f Mops/s) against %s\n",
		len(stream), elapsed.Round(time.Millisecond),
		float64(len(stream))/elapsed.Seconds()/1e6, *scheme)
	fmt.Fprintf(out, "final: %d items at %.1f%% load, %d stashed, %d failed inserts\n",
		tab.Len(), tab.LoadRatio()*100, tab.StashLen(), failed)
	fmt.Fprintf(out, "lookups: %d hits, %d misses; stash probed %d times\n",
		hits, misses, st.StashProbe)
	fmt.Fprintf(out, "traffic: %.3f off-chip reads/op, %.3f writes/op, %.3f counter accesses/op\n",
		perOp(m.OffChipReads, len(stream)), perOp(m.OffChipWrites, len(stream)),
		perOp(m.OnChipReads+m.OnChipWrites, len(stream)))
	phaseNames := [3]string{workload.OpInsert: "insert", workload.OpLookup: "lookup", workload.OpDelete: "delete"}
	for kind, name := range phaseNames {
		n, ph := counts[kind], phases[kind]
		if n == 0 {
			continue
		}
		fmt.Fprintf(out, "phase %s: %d ops, %.3f off-chip reads/op, %.3f writes/op, %.3f counter accesses/op\n",
			name, n, perOp(ph.OffChipReads, n), perOp(ph.OffChipWrites, n),
			perOp(ph.OnChipReads+ph.OnChipWrites, n))
	}
	if *metrics != "" && *linger > 0 {
		fmt.Fprintf(out, "lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	if failed > 0 {
		return fmt.Errorf("replay: %d of %d inserts failed outright", failed, counts[workload.OpInsert])
	}
	return nil
}

// clusterReplayConfig carries the -nodes replay flags.
type clusterReplayConfig struct {
	nodes    string
	replicas int
	quorum   int
	vnodes   int
	seed     uint64
	traceOn  bool
	sample   int
	slow     time.Duration
	top      int
}

// runClusterReplay replays the trace against a live cluster through the
// replicated client, then summarizes the recorded client-side spans: one
// line per operation kind (count, mean, max) and the slowest requests as
// indented span trees. Insert failures (quorum misses included) make the
// replay exit non-zero, mirroring the in-process path.
func runClusterReplay(stream []workload.Op, cfg clusterReplayConfig, out io.Writer) error {
	var rec *trace.Recorder
	if cfg.traceOn {
		rec = trace.New(trace.Options{Sample: cfg.sample, SlowNanos: cfg.slow.Nanoseconds()})
	}
	c, err := cluster.New(cluster.Config{
		Nodes:       splitNodes(cfg.nodes),
		Replicas:    cfg.replicas,
		WriteQuorum: cfg.quorum,
		VNodes:      cfg.vnodes,
		Seed:        cfg.seed,
		Trace:       rec,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	start := time.Now()
	var hits, misses, failed int64
	for _, op := range stream {
		switch op.Kind {
		case workload.OpInsert:
			if err := c.Put(op.Key, op.Key); err != nil {
				failed++
			}
		case workload.OpLookup:
			if _, found, err := c.Get(op.Key); err == nil && found {
				hits++
			} else {
				misses++
			}
		case workload.OpDelete:
			if err := c.Del(op.Key); err != nil {
				failed++
			}
		}
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "replayed %d ops in %v (%.2f Mops/s) against cluster %s (R=%d W=%d)\n",
		len(stream), elapsed.Round(time.Millisecond),
		float64(len(stream))/elapsed.Seconds()/1e6, cfg.nodes, cfg.replicas, cfg.quorum)
	fmt.Fprintf(out, "lookups: %d hits, %d misses; %d failed writes\n", hits, misses, failed)
	if rec != nil {
		writeTraceSummary(out, rec, cfg.top)
	}
	if failed > 0 {
		return fmt.Errorf("replay: %d of %d writes failed", failed, len(stream))
	}
	return nil
}

// writeTraceSummary renders the per-phase span statistics and the slowest-N
// span trees from one recorder's flight ring.
func writeTraceSummary(out io.Writer, rec *trace.Recorder, top int) {
	spans := rec.Spans()
	type agg struct {
		n        int
		sum, max int64
	}
	byOp := map[byte]*agg{}
	for _, sp := range spans {
		if sp.Kind != trace.KindClientOp {
			continue
		}
		a := byOp[sp.Op]
		if a == nil {
			a = &agg{}
			byOp[sp.Op] = a
		}
		a.n++
		a.sum += sp.Dur
		if sp.Dur > a.max {
			a.max = sp.Dur
		}
	}
	ops := make([]byte, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		a := byOp[op]
		fmt.Fprintf(out, "trace %s: %d sampled, mean %.3gµs, max %.3gµs\n",
			trace.OpString(op), a.n, float64(a.sum)/float64(a.n)/1e3, float64(a.max)/1e3)
	}
	roots := trace.Trees(spans)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Span.Dur > roots[j].Span.Dur })
	if top > len(roots) {
		top = len(roots)
	}
	if top > 0 {
		fmt.Fprintf(out, "slowest %d of %d traces:\n", top, len(roots))
		for _, n := range roots[:top] {
			n.Write(out, 1)
		}
	}
}

// splitNodes parses the -nodes list.
func splitNodes(s string) []string {
	var nodes []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// replayGauges samples the table for the telemetry gauges. The kv.Table
// interface covers the basics; the copy histogram and stash-flag density are
// picked up when the scheme provides them (the McCuckoo tables do, the
// baselines do not).
func replayGauges(tab kv.Table) telemetry.Gauges {
	g := telemetry.Gauges{
		Items:     tab.Len(),
		Capacity:  tab.Capacity(),
		LoadRatio: tab.LoadRatio(),
		StashLen:  tab.StashLen(),
		Ops:       tab.Stats(),
	}
	if ch, ok := tab.(interface{ CopyHistogram() []int }); ok {
		hist := ch.CopyHistogram()
		g.CopyHist = make([]int64, len(hist))
		for v, n := range hist {
			g.CopyHist[v] = int64(n)
		}
	}
	if sf, ok := tab.(interface{ StashFlagDensity() float64 }); ok {
		g.StashFlagDensity = sf.StashFlagDensity()
	}
	return g
}

func perOp(n int64, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return float64(n) / float64(ops)
}
