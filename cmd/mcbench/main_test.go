package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig9", "tab2", "abl-resolver", "all"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunNoExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no -exp accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "nope"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "tab1", "-capacity", "4608", "-runs", "1",
		"-queries", "100", "-maxloop", "100", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Cuckoo", "B-McCuckoo", "completed in", "seed=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "tab1", "-csv", "-capacity", "4608", "-runs", "1",
		"-queries", "100"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# tab1") || !strings.Contains(out, "scheme,load at first collision") {
		t.Errorf("CSV output malformed:\n%s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Error("CSV mode should not print timing lines")
	}
}

func TestRunConcurrentMode(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-mode", "concurrent", "-capacity", "3072", "-ops", "20000",
		"-goroutines", "1,2", "-shards", "2", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mode=concurrent", "global-lock", "sharded/2", "Per-shard statistics", "completed in"} {
		if !strings.Contains(out, want) {
			t.Errorf("concurrent output missing %q", want)
		}
	}
}

func TestRunConcurrentModeBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "concurrent", "-shards", "3"}, &sb); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	if err := run([]string{"-mode", "concurrent", "-goroutines", "x"}, &sb); err == nil {
		t.Error("bad goroutine list accepted")
	}
	if err := run([]string{"-mode", "bogus"}, &sb); err == nil {
		t.Error("unknown mode accepted")
	}
}
