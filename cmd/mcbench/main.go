// Command mcbench regenerates the tables and figures of the McCuckoo paper's
// evaluation (Fig. 9–16, Tables I–III) plus the ablations described in
// DESIGN.md, and — in concurrent mode — sweeps wall-clock throughput of the
// sharded table against the global-lock wrapper.
//
// Usage:
//
//	mcbench -list
//	mcbench -exp fig9
//	mcbench -exp all -capacity 147456 -runs 5 -seed 1
//	mcbench -mode concurrent -goroutines 1,2,4,8 -shards 4,16 -ops 600000
//	mcbench -mode concurrent -batch 0
//
// Output is plain text: one aligned table per figure, with one column per
// scheme (Cuckoo, McCuckoo, BCHT, B-McCuckoo); concurrent mode prints one
// throughput column per table variant plus per-shard statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mccuckoo/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	var cc bench.CLIConfig
	cc.RegisterCommon(fs, 0, "total slots per scheme (default 147456; concurrent mode: 196608)")
	cc.RegisterExperiment(fs)
	var (
		mode       = fs.String("mode", "paper", "benchmark mode: 'paper' (figure reproduction) or 'concurrent' (sharded throughput sweep)")
		exp        = fs.String("exp", "", "experiment id to run, or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		csvOut     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		goroutines = fs.String("goroutines", "", "concurrent mode: goroutine counts to sweep (default 1,2,4,8)")
		shards     = fs.String("shards", "", "concurrent mode: shard counts to sweep, powers of two (default 4,16)")
		ops        = fs.Int("ops", 0, "concurrent mode: mixed ops replayed per configuration (default 600000)")
		batch      = fs.Int("batch", 64, "concurrent mode: batch size for the sharded batched series (0 disables it)")
		jsonOut    = fs.String("json", "", "concurrent mode: also write the results as a versioned BENCH report (perfgate schema) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cc.Validate(); err != nil {
		return err
	}

	switch *mode {
	case "paper", "":
	case "concurrent":
		return runConcurrent(out, cc.Capacity, *ops, *batch, cc.Seed, *goroutines, *shards, *csvOut, *jsonOut)
	default:
		return fmt.Errorf("unknown mode %q (use 'paper' or 'concurrent')", *mode)
	}

	if *list || *exp == "" {
		fmt.Fprintln(out, "available experiments:")
		for _, e := range bench.Experiments {
			fmt.Fprintf(out, "  %-14s %s\n", e.ID, e.Desc)
		}
		fmt.Fprintln(out, "  all            run everything")
		if *exp == "" && !*list {
			return fmt.Errorf("no experiment selected (use -exp)")
		}
		return nil
	}

	o := cc.Options()

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.Experiments
	} else {
		e, ok := bench.Find(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		selected = []bench.Experiment{e}
	}

	fmt.Fprintf(out, "mcbench: capacity=%d runs=%d maxloop=%d queries=%d seed=%d\n\n",
		o.Capacity, o.Runs, o.MaxLoop, o.Queries, o.Seed)
	for _, e := range selected {
		start := time.Now()
		results, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, r := range results {
			if *csvOut {
				fmt.Fprintf(out, "# %s\n", r.ID)
				if err := r.RenderCSV(out); err != nil {
					return err
				}
				fmt.Fprintln(out)
			} else if err := r.Render(out); err != nil {
				return err
			}
		}
		if !*csvOut {
			fmt.Fprintf(out, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// runConcurrent runs the sharded-vs-global-lock throughput sweep.
func runConcurrent(out io.Writer, capacity, ops, batch int, seed uint64, goroutines, shards string, csvOut bool, jsonOut string) error {
	o := bench.DefaultConcurrentOptions()
	o.Seed = seed
	if capacity != 0 {
		o.Capacity = capacity
	}
	if ops != 0 {
		o.Ops = ops
	}
	o.Batch = batch
	var err error
	if o.Goroutines, err = parseIntList(goroutines, o.Goroutines); err != nil {
		return fmt.Errorf("-goroutines: %w", err)
	}
	if o.Shards, err = parseIntList(shards, o.Shards); err != nil {
		return fmt.Errorf("-shards: %w", err)
	}

	fmt.Fprintf(out, "mcbench: mode=concurrent capacity=%d ops=%d batch=%d seed=%d\n\n",
		o.Capacity, o.Ops, o.Batch, o.Seed)
	start := time.Now()
	results, err := bench.ConcurrentSweep(o)
	if err != nil {
		return err
	}
	for _, r := range results {
		if csvOut {
			fmt.Fprintf(out, "# %s\n", r.ID)
			if err := r.RenderCSV(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		} else if err := r.Render(out); err != nil {
			return err
		}
	}
	if !csvOut {
		fmt.Fprintf(out, "[concurrent sweep completed in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if jsonOut != "" {
		// Mops/s → ns/op so the report speaks the gate's unit.
		rep := bench.PerfReport("sharded-vs-global-lock concurrent throughput",
			"go run ./cmd/mcbench -mode concurrent -json", results,
			func(mops float64) float64 { return 1000 / mops })
		if err := rep.WriteFile(jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d series to %s (schema v%d)\n", len(rep.Series), jsonOut, rep.SchemaVersion)
	}
	return nil
}

// parseIntList parses a comma-separated list of positive ints, returning
// def when s is empty.
func parseIntList(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		vals = append(vals, v)
	}
	return vals, nil
}
