// Command mcbench regenerates the tables and figures of the McCuckoo paper's
// evaluation (Fig. 9–16, Tables I–III) plus the ablations described in
// DESIGN.md.
//
// Usage:
//
//	mcbench -list
//	mcbench -exp fig9
//	mcbench -exp all -capacity 147456 -runs 5 -seed 1
//
// Output is plain text: one aligned table per figure, with one column per
// scheme (Cuckoo, McCuckoo, BCHT, B-McCuckoo).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mccuckoo/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment id to run, or 'all'")
		list     = fs.Bool("list", false, "list available experiments")
		capacity = fs.Int("capacity", 0, "total slots per scheme (default 147456)")
		runs     = fs.Int("runs", 0, "independent runs averaged per point (default 5)")
		maxloop  = fs.Int("maxloop", 0, "kick chain bound (default 500)")
		queries  = fs.Int("queries", 0, "lookups sampled per measurement point (default 20000)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		csvOut   = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list || *exp == "" {
		fmt.Fprintln(out, "available experiments:")
		for _, e := range bench.Experiments {
			fmt.Fprintf(out, "  %-14s %s\n", e.ID, e.Desc)
		}
		fmt.Fprintln(out, "  all            run everything")
		if *exp == "" && !*list {
			return fmt.Errorf("no experiment selected (use -exp)")
		}
		return nil
	}

	o := bench.DefaultOptions()
	if *capacity != 0 {
		o.Capacity = *capacity
	}
	if *runs != 0 {
		o.Runs = *runs
	}
	if *maxloop != 0 {
		o.MaxLoop = *maxloop
	}
	if *queries != 0 {
		o.Queries = *queries
	}
	o.Seed = *seed

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.Experiments
	} else {
		e, ok := bench.Find(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		selected = []bench.Experiment{e}
	}

	fmt.Fprintf(out, "mcbench: capacity=%d runs=%d maxloop=%d queries=%d seed=%d\n\n",
		o.Capacity, o.Runs, o.MaxLoop, o.Queries, o.Seed)
	for _, e := range selected {
		start := time.Now()
		results, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, r := range results {
			if *csvOut {
				fmt.Fprintf(out, "# %s\n", r.ID)
				if err := r.RenderCSV(out); err != nil {
					return err
				}
				fmt.Fprintln(out)
			} else if err := r.Render(out); err != nil {
				return err
			}
		}
		if !*csvOut {
			fmt.Fprintf(out, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
