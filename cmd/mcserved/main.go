// Command mcserved serves a McCuckoo table over TCP with the wire protocol
// (DESIGN.md §10): pipelined GET/PUT/DEL/BATCH/STATS/PING with explicit
// BUSY backpressure, per-connection limits, and graceful drain on
// SIGTERM/SIGINT.
//
// The table kind is chosen with -kind (sharded by default; single and
// blocked are served behind one mutex), or restored from a snapshot with
// -load, which sniffs the snapshot's kind. With -snapshot the table is
// checkpointed there every -checkpoint interval and once more during
// shutdown, so a restart with -load resumes where the server left off.
//
// With -metrics an HTTP listener exposes the combined Prometheus
// exposition (table telemetry, mccuckoo_server_* counters, Go runtime
// health) on /metrics, the debug endpoints under /debug/mccuckoo/, and the
// standard pprof profiles under /debug/pprof/.
//
// With -trace the node keeps a flight recorder of request spans (DESIGN.md
// §13): incoming frames carrying a trace context get server-side spans
// (queue wait, table op, kick-chain length), head-sampled traces started
// here get 1-in-N sampling (-tracesample), and any op slower than
// -traceslow is captured regardless of sampling. The recorder is dumped at
// /debug/mccuckoo/trace (filters: ?trace=<hex id>, ?minns=<dur>,
// ?limit=<n>) and its counters join /metrics.
//
// With -peers the node joins a cluster (DESIGN.md §11): the store is
// wrapped in replication bookkeeping, the replication opcodes are enabled,
// and the node subscribes to every peer's op log, applying the entries it
// owns under the shared consistent-hash ring (-replicas copies per key,
// ring seeded by -seed, -vnodes virtual nodes — all of which must match on
// every node and client). With -snapshot, a replication sidecar is
// checkpointed next to the snapshot so a restart resumes its subscriptions
// instead of taking a full resync. /metrics additionally exposes
// mccuckoo_replica_* and per-peer mccuckoo_peer_* series (replica lag,
// repair counts, connects).
//
// With -sweep the node also runs background anti-entropy (DESIGN.md §12):
// every interval it exchanges ring-ownership-filtered XOR digests with each
// peer, bisects mismatched key ranges (-sweepleaf sets the leaf size), and
// repairs divergent keys through the replication paths. A peer that keeps
// failing its sweeps trips a breaker (-breakerfails consecutive failures)
// and is skipped until a jittered half-open probe (-breakerprobe)
// succeeds. /metrics gains the mccuckoo_sweep_* series.
//
// Example:
//
//	mcserved -addr :7466 -capacity 1048576 -shards 8 \
//	  -metrics 127.0.0.1:9091 -snapshot /var/lib/mccuckoo/table.snap -checkpoint 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mccuckoo"
	"mccuckoo/internal/cluster"
	"mccuckoo/internal/telemetry"
	"mccuckoo/internal/telemetry/trace"
	"mccuckoo/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

// saver and sampler are the optional capabilities of the concrete kinds
// behind the BatchStore interface.
type saver interface{ SaveFile(path string) error }
type sampler interface{ SampleTelemetry() }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7466", "TCP address to serve the wire protocol on")
		metrics    = fs.String("metrics", "", "HTTP address for /metrics and /debug/mccuckoo/ (empty disables)")
		kind       = fs.String("kind", "sharded", "table kind: sharded, single, or blocked")
		capacity   = fs.Int("capacity", 1<<20, "table capacity in slots")
		shards     = fs.Int("shards", 8, "shard count for -kind sharded")
		seed       = fs.Uint64("seed", 1, "hash seed")
		load       = fs.String("load", "", "restore the table from this snapshot (kind is sniffed)")
		snapshot   = fs.String("snapshot", "", "checkpoint the table to this path")
		checkpoint = fs.Duration("checkpoint", 0, "periodic checkpoint interval (0 disables; needs -snapshot)")
		maxConns   = fs.Int("maxconns", 256, "maximum simultaneous connections")
		queue      = fs.Int("queue", 128, "per-connection work-queue depth (BUSY beyond it)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-drain budget on shutdown")
		peers      = fs.String("peers", "", "comma-separated addresses of the other cluster nodes (enables replication)")
		self       = fs.String("self", "", "this node's address in the cluster ring (default -addr)")
		replicas   = fs.Int("replicas", 2, "copies kept of each key across the cluster")
		vnodes     = fs.Int("vnodes", 0, "virtual nodes per cluster node (0 = default)")
		sweep      = fs.Duration("sweep", 0, "anti-entropy sweep interval (0 disables; needs -peers)")
		sweepLeaf  = fs.Int("sweepleaf", 0, "anti-entropy bisection leaf size in keys (0 = default)")
		brkFails   = fs.Int("breakerfails", 0, "consecutive failed sweeps that trip a peer's breaker (0 = default)")
		brkProbe   = fs.Duration("breakerprobe", 0, "base interval between breaker half-open probes (0 = sweep interval)")
		traceOn    = fs.Bool("trace", false, "record request spans into the flight recorder")
		traceSamp  = fs.Int("tracesample", 64, "head-sample 1 in N traces started at this node (needs -trace)")
		traceSlow  = fs.Duration("traceslow", 100*time.Millisecond, "capture any op slower than this even when unsampled (needs -trace; 0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, "mcserved: ", log.LstdFlags)

	// The recorder stays nil without -trace: every span call site treats a
	// nil recorder as a no-op, so the untraced server runs the exact same
	// code it did before tracing existed.
	var rec *trace.Recorder
	if *traceOn {
		rec = trace.New(trace.Options{
			Sample:    *traceSamp,
			SlowNanos: traceSlow.Nanoseconds(),
		})
	}

	tel := mccuckoo.NewTelemetry()
	store, err := buildStore(*kind, *capacity, *shards, *seed, *load, tel)
	if err != nil {
		return err
	}

	// Cluster mode: wrap the store in replication bookkeeping and prepare
	// the peer subscription loops. The ring covers self plus every peer.
	var rep *wire.Replicated
	var replicator *cluster.Replicator
	var sweeper *cluster.Sweeper
	sidecarPath := ""
	if *peers != "" {
		rep = wire.NewReplicated(store, wire.ReplicaConfig{})
		if *snapshot != "" {
			sidecarPath = *snapshot + ".replica"
			if *load != "" {
				if err := rep.LoadSidecar(sidecarPath); err != nil {
					if !errors.Is(err, os.ErrNotExist) {
						logger.Printf("replica sidecar %s: %v (starting with a full resync)", sidecarPath, err)
					}
				}
			}
		}
		selfAddr := *self
		if selfAddr == "" {
			selfAddr = *addr
		}
		nodes := append(splitPeers(*peers), selfAddr)
		replicator, err = cluster.NewReplicator(rep, cluster.ReplicatorConfig{
			Self:     selfAddr,
			Nodes:    nodes,
			Replicas: *replicas,
			VNodes:   *vnodes,
			Seed:     *seed,
			Logf:     logger.Printf,
			Trace:    rec,
		})
		if err != nil {
			return err
		}
		if *sweep > 0 {
			sweeper, err = cluster.NewSweeper(rep, cluster.SweeperConfig{
				Self:            selfAddr,
				Nodes:           nodes,
				Replicas:        *replicas,
				VNodes:          *vnodes,
				Seed:            *seed,
				Interval:        *sweep,
				LeafKeys:        *sweepLeaf,
				BreakerFailures: *brkFails,
				BreakerProbe:    *brkProbe,
				Logf:            logger.Printf,
				Trace:           rec,
			})
			if err != nil {
				return err
			}
		} else {
			// Even without a sweep loop, install the ownership digest
			// filter so this node answers peers' DIGEST requests over the
			// key set both sides share.
			ring, err := cluster.NewRing(nodes, *vnodes, *seed)
			if err != nil {
				return err
			}
			rep.SetDigestFilter(cluster.DigestFilter(ring, selfAddr, *replicas))
		}
		store = rep
	}

	srv, err := wire.NewServer(wire.Config{
		Store:      store,
		MaxConns:   *maxConns,
		QueueDepth: *queue,
		Logf:       logger.Printf,
		Trace:      rec,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	var metricsSrv *http.Server
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			ln.Close()
			return err
		}
		// One merged exposition instead of ad-hoc writer concatenation;
		// MergedHandler skips the contributors this configuration left nil.
		parts := []telemetry.MetricsWriter{tel.WriteMetrics, srv.WritePrometheus}
		if rep != nil {
			parts = append(parts, rep.WritePrometheus)
		}
		if replicator != nil {
			parts = append(parts, replicator.WritePrometheus)
		}
		if sweeper != nil {
			parts = append(parts, sweeper.WritePrometheus)
		}
		if rec != nil {
			parts = append(parts, rec.WritePrometheus)
		}
		parts = append(parts, telemetry.WriteRuntimeMetrics)
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.MergedHandler(parts...))
		mux.Handle("/debug/mccuckoo/", tel.Handler())
		if rec != nil {
			mux.Handle("/debug/mccuckoo/trace", rec.Handler())
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics server: %v", err)
			}
		}()
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", mln.Addr())
	}

	// Install the signal handler before announcing readiness, so a
	// supervisor that signals right after the listening line never races
	// an unhandled SIGTERM.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigs)

	// Background duties: periodic checkpoints and gauge sampling for the
	// single-writer kinds (sharded gauges are live and need no push).
	stopHousekeeping := make(chan struct{})
	housekeepingDone := make(chan struct{})
	go func() {
		defer close(housekeepingDone)
		interval := *checkpoint
		if interval <= 0 {
			interval = 10 * time.Second // sampling-only cadence
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stopHousekeeping:
				return
			case <-ticker.C:
				sampleGauges(store)
				if *checkpoint > 0 && *snapshot != "" {
					if err := saveSnapshot(store, *snapshot, sidecarPath); err != nil {
						logger.Printf("checkpoint: %v", err)
					}
				}
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if replicator != nil {
		replicator.Start()
		fmt.Fprintf(stdout, "replicating with peers %s (replicas=%d)\n", *peers, *replicas)
	}
	if sweeper != nil {
		sweeper.Start()
		fmt.Fprintf(stdout, "anti-entropy sweeping every %v\n", *sweep)
	}
	fmt.Fprintf(stdout, "listening on %s (kind=%s capacity=%d)\n", ln.Addr(), *kind, *capacity)

	select {
	case sig := <-sigs:
		logger.Printf("%v: draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
		if serr := <-serveErr; !errors.Is(serr, wire.ErrServerClosed) {
			logger.Printf("serve: %v", serr)
		}
	case err := <-serveErr:
		close(stopHousekeeping)
		<-housekeepingDone
		if sweeper != nil {
			sweeper.Close()
		}
		if replicator != nil {
			replicator.Close()
		}
		if metricsSrv != nil {
			metricsSrv.Close()
		}
		return err
	}

	close(stopHousekeeping)
	<-housekeepingDone
	if sweeper != nil {
		sweeper.Close()
	}
	if replicator != nil {
		replicator.Close()
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if *snapshot != "" {
		if err := saveSnapshot(store, *snapshot, sidecarPath); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		logger.Printf("snapshot saved to %s", *snapshot)
	}
	fmt.Fprintln(stdout, "drained")
	return nil
}

// buildStore constructs (or restores) the served table. Single-writer
// kinds are wrapped in wire.Locked; Sharded serves as-is.
func buildStore(kind string, capacity, shards int, seed uint64, load string, tel *mccuckoo.Telemetry) (mccuckoo.BatchStore, error) {
	opts := []mccuckoo.Option{mccuckoo.WithSeed(seed), mccuckoo.WithTelemetry(tel)}
	if load != "" {
		return loadStore(load, tel)
	}
	switch kind {
	case "sharded":
		return mccuckoo.NewSharded(capacity, shards, opts...)
	case "single":
		t, err := mccuckoo.New(capacity, opts...)
		if err != nil {
			return nil, err
		}
		return wire.NewLocked(t), nil
	case "blocked":
		t, err := mccuckoo.NewBlocked(capacity, opts...)
		if err != nil {
			return nil, err
		}
		return wire.NewLocked(t), nil
	default:
		return nil, fmt.Errorf("unknown -kind %q (want sharded, single, or blocked)", kind)
	}
}

// loadStore restores a snapshot of unknown kind by trying each loader; the
// snapshot header disambiguates, so exactly one can succeed.
func loadStore(path string, tel *mccuckoo.Telemetry) (mccuckoo.BatchStore, error) {
	opts := []mccuckoo.Option{mccuckoo.WithTelemetry(tel)}
	var errs []string
	if s, err := mccuckoo.LoadShardedFile(path, opts...); err == nil {
		return s, nil
	} else {
		errs = append(errs, "sharded: "+err.Error())
	}
	if t, err := mccuckoo.LoadFile(path, opts...); err == nil {
		return wire.NewLocked(t), nil
	} else {
		errs = append(errs, "single: "+err.Error())
	}
	if t, err := mccuckoo.LoadBlockedFile(path, opts...); err == nil {
		return wire.NewLocked(t), nil
	} else {
		errs = append(errs, "blocked: "+err.Error())
	}
	return nil, fmt.Errorf("load %s: no kind accepted the snapshot (%s)", path, strings.Join(errs, "; "))
}

// splitPeers parses the -peers list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// saveSnapshot checkpoints any kind: Locked wrappers save under their
// mutex via Do, Sharded saves through its own shard locking. A Replicated
// store checkpoints the value snapshot and its replication sidecar as one
// consistent pair.
func saveSnapshot(store mccuckoo.BatchStore, path, sidecar string) error {
	if rep, ok := store.(*wire.Replicated); ok {
		if sidecar == "" {
			return saveSnapshot(rep.Inner(), path, "")
		}
		return rep.CheckpointWith(func() error {
			return saveSnapshot(rep.Inner(), path, "")
		}, sidecar)
	}
	if l, ok := store.(*wire.Locked); ok {
		var err error
		l.Do(func(s mccuckoo.BatchStore) {
			if sv, ok := s.(saver); ok {
				err = sv.SaveFile(path)
			} else {
				err = fmt.Errorf("kind %T cannot snapshot", s)
			}
		})
		return err
	}
	if sv, ok := store.(saver); ok {
		return sv.SaveFile(path)
	}
	return fmt.Errorf("kind %T cannot snapshot", store)
}

// sampleGauges pushes fresh gauge values for kinds whose telemetry is
// push-based.
func sampleGauges(store mccuckoo.BatchStore) {
	if rep, ok := store.(*wire.Replicated); ok {
		store = rep.Inner()
	}
	if l, ok := store.(*wire.Locked); ok {
		l.Do(func(s mccuckoo.BatchStore) {
			if sm, ok := s.(sampler); ok {
				sm.SampleTelemetry()
			}
		})
	}
}
