package main

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mccuckoo"
	"mccuckoo/internal/cluster"
	"mccuckoo/internal/wire"
)

// startServed runs run() in-process with a pipe on stdout and returns a
// channel of stdout lines plus the run error channel.
func startServed(t *testing.T, args ...string) (lines chan string, errCh chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	lines = make(chan string, 32)
	errCh = make(chan error, 1)
	go func() {
		err := run(args, pw)
		pw.Close()
		errCh <- err
	}()
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return lines, errCh
}

// waitLine returns the first stdout line with the given prefix.
func waitLine(t *testing.T, lines chan string, prefix string) string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("stdout closed before %q line", prefix)
			}
			if strings.HasPrefix(l, prefix) {
				return l
			}
		case <-deadline:
			t.Fatalf("no %q line within deadline", prefix)
		}
	}
}

func sigtermSelf(t *testing.T) {
	t.Helper()
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

// TestServeAndDrain boots mcserved in-process, talks to it with the wire
// client, scrapes the combined /metrics exposition, and verifies a SIGTERM
// drains cleanly.
func TestServeAndDrain(t *testing.T) {
	lines, errCh := startServed(t,
		"-addr", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
		"-kind", "sharded", "-capacity", "8192", "-shards", "4",
	)
	murl := strings.TrimPrefix(waitLine(t, lines, "metrics on "), "metrics on ")
	addr := strings.Fields(strings.TrimPrefix(waitLine(t, lines, "listening on "), "listening on "))[0]

	c, err := wire.Dial(wire.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if r, err := c.Put(42, 4242); err != nil || r.Status != mccuckoo.Placed {
		t.Fatalf("put: %+v, %v", r, err)
	}
	if v, ok, err := c.Get(42); err != nil || !ok || v != 4242 {
		t.Fatalf("get: %d, %v, %v", v, ok, err)
	}
	st, err := c.Stats()
	if err != nil || st.Len != 1 {
		t.Fatalf("stats: %+v, %v", st, err)
	}

	resp, err := http.Get(murl)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"mccuckoo_items", "mccuckoo_server_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	sigtermSelf(t)
	waitLine(t, lines, "drained")
	if err := <-errCh; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSnapshotRoundTrip: a SIGTERM shutdown with -snapshot persists the
// table, and a restart with -load serves the same data.
func TestSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "table.snap")

	lines, errCh := startServed(t,
		"-addr", "127.0.0.1:0", "-kind", "single", "-capacity", "4096",
		"-snapshot", snap,
	)
	addr := strings.Fields(strings.TrimPrefix(waitLine(t, lines, "listening on "), "listening on "))[0]
	c, err := wire.Dial(wire.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 100)
	vals := make([]uint64, 100)
	for i := range keys {
		keys[i], vals[i] = uint64(i+1), uint64(i)*11
	}
	if _, err := c.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	c.Close()
	sigtermSelf(t)
	if err := <-errCh; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	lines, errCh = startServed(t, "-addr", "127.0.0.1:0", "-load", snap)
	addr = strings.Fields(strings.TrimPrefix(waitLine(t, lines, "listening on "), "listening on "))[0]
	c, err = wire.Dial(wire.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	gv, gf, err := c.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !gf[i] || gv[i] != vals[i] {
			t.Fatalf("restored key %d: %d,%v want %d,true", keys[i], gv[i], gf[i], vals[i])
		}
	}
	c.Close()
	sigtermSelf(t)
	if err := <-errCh; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestClusterServe boots a 3-node mcserved cluster with -peers, drives it
// through the cluster client, and verifies the replication metrics are on
// /metrics before a single SIGTERM drains all three nodes.
func TestClusterServe(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // the node re-binds the same port
	}

	lineChans := make([]chan string, 3)
	errChans := make([]chan error, 3)
	for i, addr := range addrs {
		var peers []string
		for j, p := range addrs {
			if j != i {
				peers = append(peers, p)
			}
		}
		lineChans[i], errChans[i] = startServed(t,
			"-addr", addr, "-metrics", "127.0.0.1:0",
			"-kind", "sharded", "-capacity", "8192", "-shards", "4", "-seed", "42",
			"-peers", strings.Join(peers, ","), "-replicas", "2",
		)
	}
	var murl string
	for i := range addrs {
		if i == 0 {
			murl = strings.TrimPrefix(waitLine(t, lineChans[i], "metrics on "), "metrics on ")
		}
		waitLine(t, lineChans[i], "replicating with peers ")
		waitLine(t, lineChans[i], "listening on ")
	}

	c, err := cluster.New(cluster.Config{Nodes: addrs, Replicas: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if err := c.Put(k, k*5); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint64(1); k <= 200; k++ {
		if v, found, err := c.Get(k); err != nil || !found || v != k*5 {
			t.Fatalf("get %d: %d,%v,%v", k, v, found, err)
		}
	}
	c.Close()

	resp, err := http.Get(murl)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"mccuckoo_replica_applied_seq", "mccuckoo_peer_replica_lag", "mccuckoo_server_subscriptions_active"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	sigtermSelf(t)
	for i := range errChans {
		if err := <-errChans[i]; err != nil {
			t.Fatalf("node %d run: %v", i, err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-kind", "bogus"}, io.Discard); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if err := run([]string{"-load", filepath.Join(t.TempDir(), "missing.snap")}, io.Discard); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
