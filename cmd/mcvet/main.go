// Command mcvet runs the repo-specific static-analysis suite over the
// given package patterns, like a multichecker built from the analyzers in
// internal/analysis/mcvetchecks. It is a tier-1 CI gate: ci.sh runs
//
//	go run ./cmd/mcvet ./...
//
// before the test suite, so invariant violations fail the build before a
// single test executes.
//
// Exit status: 0 when every package is clean, 1 when findings were
// reported, 2 on load or internal errors. Findings print one per line as
// file:line:col: [check] message — the format editors and CI annotators
// already understand.
package main

import (
	"fmt"
	"os"

	"mccuckoo/internal/analysis"
	"mccuckoo/internal/analysis/mcvetchecks"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 && (args[0] == "-h" || args[0] == "--help" || args[0] == "help") {
		usage()
		return 0
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcvet: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, mcvetchecks.All)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcvet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", d.Pos, d.Check, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mcvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func usage() {
	fmt.Println("usage: mcvet [packages]")
	fmt.Println()
	fmt.Println("Runs the McCuckoo invariant analyzers over the given package")
	fmt.Println("patterns (default ./...):")
	fmt.Println()
	for _, a := range mcvetchecks.All {
		fmt.Printf("  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Suppress a finding with a trailing or preceding comment:")
	fmt.Println("  //mcvet:allow <check> <reason>")
}
