// Command mcvet runs the repo-specific static-analysis suite over the
// given package patterns, like a multichecker built from the analyzers in
// internal/analysis/mcvetchecks. It is a tier-1 CI gate: ci.sh runs
//
//	go run ./cmd/mcvet -json ./...
//
// before the test suite, so invariant violations fail the build before a
// single test executes.
//
// Exit status: 0 when every package is clean, 1 when unsuppressed findings
// were reported, 2 on load or internal errors. Findings print one per line
// as file:line:col: [check] message — the format editors and CI annotators
// already understand. With -json each finding prints as one JSON object
// per line ({"file","line","check","message","suppressed"}), including
// allow-suppressed findings so tooling can audit the suppression surface;
// only unsuppressed findings count toward the exit status.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mccuckoo/internal/analysis"
	"mccuckoo/internal/analysis/mcvetchecks"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// finding is the -json wire shape: one object per line.
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string) int {
	jsonOut := false
	var patterns []string
	for _, arg := range args {
		switch arg {
		case "-h", "--help", "help":
			usage()
			return 0
		case "-json", "--json":
			jsonOut = true
		default:
			// Reject unknown flags here rather than letting them leak
			// into the go list invocation as package patterns.
			if len(arg) > 1 && arg[0] == '-' {
				fmt.Fprintf(os.Stderr, "mcvet: unknown flag %s\n", arg)
				usage()
				return 2
			}
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcvet: %v\n", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, mcvetchecks.All)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcvet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if jsonOut {
				if err := enc.Encode(finding{
					File:       d.Pos.Filename,
					Line:       d.Pos.Line,
					Check:      d.Check,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				}); err != nil {
					fmt.Fprintf(os.Stderr, "mcvet: %v\n", err)
					return 2
				}
			} else if !d.Suppressed {
				fmt.Printf("%s: [%s] %s\n", d.Pos, d.Check, d.Message)
			}
			if !d.Suppressed {
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mcvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func usage() {
	fmt.Println("usage: mcvet [-json] [packages]")
	fmt.Println()
	fmt.Println("Runs the McCuckoo invariant analyzers over the given package")
	fmt.Println("patterns (default ./...):")
	fmt.Println()
	for _, a := range mcvetchecks.All {
		fmt.Printf("  %-18s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("-json prints one finding per line as")
	fmt.Println(`  {"file","line","check","message","suppressed"}`)
	fmt.Println("including allow-suppressed findings; the exit status counts only")
	fmt.Println("unsuppressed ones.")
	fmt.Println()
	fmt.Println("Suppress a finding with a trailing or preceding comment:")
	fmt.Println("  //mcvet:allow <check> <reason>")
}
