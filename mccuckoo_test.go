package mccuckoo

import (
	"fmt"
	"sync"
	"testing"

	"mccuckoo/internal/hashutil"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(4); err == nil {
		t.Error("tiny capacity accepted")
	}
	if _, err := New(100, WithHashFunctions(5)); err == nil {
		t.Error("d=5 accepted")
	}
	if _, err := New(100, WithMaxLoop(0)); err == nil {
		t.Error("maxloop=0 accepted")
	}
	if _, err := New(100, WithStashLimit(0)); err == nil {
		t.Error("stash limit 0 accepted")
	}
	if _, err := NewBlocked(100, WithSlots(5)); err == nil {
		t.Error("slots=5 accepted")
	}
}

func TestTableRoundTrip(t *testing.T) {
	tab, err := New(3000, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Capacity() < 3000 {
		t.Fatalf("capacity %d below requested", tab.Capacity())
	}
	for k := uint64(1); k <= 1000; k++ {
		if res := tab.Insert(k, k*2); res.Status == Failed {
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := tab.Lookup(k); !ok || v != k*2 {
			t.Fatalf("lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if tab.Len() != 1000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if res := tab.Insert(5, 99); res.Status != Updated {
		t.Fatalf("re-insert status %v", res.Status)
	}
	if v, _ := tab.Lookup(5); v != 99 {
		t.Fatal("update lost")
	}
	if !tab.Delete(5) || tab.Delete(5) {
		t.Fatal("delete semantics broken")
	}
	if tab.Copies() < tab.Len() {
		t.Fatalf("Copies %d below Len %d", tab.Copies(), tab.Len())
	}
	tr := tab.Traffic()
	if tr.OffChipWrites == 0 || tr.OnChipReads == 0 {
		t.Fatalf("traffic not recorded: %+v", tr)
	}
	st := tab.Stats()
	if st.Inserts != 1001 || st.Deletes != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// d=3 counters are 2 bits each: OnChipBytes must be ~capacity/4.
	if got, want := tab.OnChipBytes(), tab.Capacity()/4; got < want || got > want+8 {
		t.Fatalf("OnChipBytes = %d, want ~%d", got, want)
	}
}

func TestBlockedRoundTrip(t *testing.T) {
	tab, err := NewBlocked(3600, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	n := int(0.99 * float64(tab.Capacity()))
	s := uint64(3)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		if res := tab.Insert(keys[i], keys[i]); res.Status == Failed {
			t.Fatalf("insert %d failed at 99%% target", i)
		}
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
	if tab.LoadRatio() < 0.98 {
		t.Fatalf("load ratio %.3f", tab.LoadRatio())
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Placed: "placed", Updated: "updated", Stashed: "stashed", Failed: "failed",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestWithoutStashFailsWhenFull(t *testing.T) {
	tab, err := New(60, WithoutStash(), WithMaxLoop(20), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	s := uint64(5)
	for i := 0; i < 100; i++ {
		if tab.Insert(hashutil.SplitMix64(&s), 1).Status == Failed {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("overfull table without stash never failed")
	}
}

func TestOptionVariantsWork(t *testing.T) {
	variants := [][]Option{
		{WithHashFunctions(4)},
		{WithTombstoneDeletion()},
		{WithMinCounterResolver()},
		{WithoutLookupPrescreen()},
		{WithUniqueKeys()},
		{WithStashLimit(16)},
	}
	for i, opts := range variants {
		tab, err := New(600, append(opts, WithSeed(uint64(i)))...)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		s := uint64(i)
		keys := make([]uint64, 300)
		for j := range keys {
			keys[j] = hashutil.SplitMix64(&s)
			tab.Insert(keys[j], keys[j])
		}
		for _, k := range keys {
			if _, ok := tab.Lookup(k); !ok {
				t.Fatalf("variant %d lost key %#x", i, k)
			}
		}
		for _, k := range keys[:100] {
			if !tab.Delete(k) {
				t.Fatalf("variant %d: delete failed", i)
			}
		}
	}
}

func TestConcurrentWrapper(t *testing.T) {
	tab, err := New(6000, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tab)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := uint64(1); k < 2000; k++ {
				c.Lookup(k)
			}
		}(r)
	}
	for k := uint64(1); k < 2000; k++ {
		c.Insert(k, k)
	}
	wg.Wait()
	if c.Len() != 1999 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Stats().Lookups == 0 {
		t.Fatal("lookups not counted")
	}

	// Blocked variant through the same generic constructor.
	b, err := NewBlocked(900, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cb := NewConcurrent(b)
	cb.Insert(1, 2)
	if v, ok := cb.Lookup(1); !ok || v != 2 {
		t.Fatal("blocked concurrent lookup failed")
	}
	if !cb.Delete(1) {
		t.Fatal("blocked concurrent delete failed")
	}
	if cb.LoadRatio() != 0 {
		t.Fatal("load ratio after delete")
	}
}

func TestMapStringKeys(t *testing.T) {
	m, err := NewMap[string, int](3000, StringHasher, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := m.Set(fmt.Sprintf("key-%04d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 1000; i++ {
		if v, ok := m.Get(fmt.Sprintf("key-%04d", i)); !ok || v != i {
			t.Fatalf("Get(key-%04d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	// Update.
	if err := m.Set("key-0001", -1); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get("key-0001"); v != -1 {
		t.Fatal("update lost")
	}
	if m.Len() != 1000 {
		t.Fatalf("Len changed on update: %d", m.Len())
	}
	// Delete and slot reuse.
	if !m.Delete("key-0002") || m.Delete("key-0002") {
		t.Fatal("delete semantics broken")
	}
	if err := m.Set("key-fresh", 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get("key-fresh"); v != 42 {
		t.Fatal("reused slot corrupted")
	}
	// Range visits everything exactly once.
	seen := map[string]bool{}
	m.Range(func(k string, v int) bool {
		if seen[k] {
			t.Fatalf("key %q visited twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != m.Len() {
		t.Fatalf("Range visited %d of %d", len(seen), m.Len())
	}
}

func TestMapFingerprintCollision(t *testing.T) {
	// A deliberately colliding hasher: all keys share one fingerprint.
	m, err := NewMap[string, int](300, func(string) uint64 { return 42 }, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b", 2); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if v, ok := m.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete("b") {
		t.Fatal("spilled delete failed")
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("spilled key survived delete")
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatal("resident key damaged by spill delete")
	}
}

func TestMapNilHasher(t *testing.T) {
	if _, err := NewMap[string, int](100, nil); err == nil {
		t.Error("nil hasher accepted")
	}
}

func TestMapModelEquivalence(t *testing.T) {
	m, err := NewMap[uint32, uint32](4000, func(k uint32) uint64 {
		return hashutil.Mix64(uint64(k))
	}, WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint32]uint32{}
	s := uint64(11)
	for i := 0; i < 10000; i++ {
		r := hashutil.SplitMix64(&s)
		key := uint32(r % 1500)
		switch (r >> 32) % 4 {
		case 0, 1:
			val := uint32(r >> 40)
			if err := m.Set(key, val); err == nil {
				model[key] = val
			}
		case 2:
			got, ok := m.Get(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v) want (%d,%v)", i, key, got, ok, want, wok)
			}
		case 3:
			_, wok := model[key]
			if got := m.Delete(key); got != wok {
				t.Fatalf("op %d: Delete(%d) = %v want %v", i, key, got, wok)
			}
			delete(model, key)
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", m.Len(), len(model))
	}
}

func TestHashersDiffer(t *testing.T) {
	if StringHasher("abc") == StringHasher("abd") {
		t.Error("string hasher collision on near keys")
	}
	if BytesHasher([]byte("abc")) != StringHasher("abc") {
		t.Error("bytes and string hashers disagree")
	}
	if Uint64Hasher(1) == Uint64Hasher(2) {
		t.Error("uint64 hasher collision")
	}
}

func TestWithDoubleHashing(t *testing.T) {
	tab, err := New(3000, WithSeed(21), WithDoubleHashing())
	if err != nil {
		t.Fatal(err)
	}
	s := hashutil.Mix64(22)
	keys := make([]uint64, 2400)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		if tab.Insert(keys[i], keys[i]).Status == Failed {
			t.Fatal("insert failed")
		}
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost with double hashing", k)
		}
	}
}
