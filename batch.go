package mccuckoo

import (
	"sync"

	"mccuckoo/internal/kv"
)

// Batched operations for the non-sharded kinds, and the Into variants for
// Sharded. The non-sharded kinds execute a batch as a loop over the point
// operations — there is no lock to amortize on a Table or Blocked, and
// Concurrent takes its table-wide lock per element so readers keep
// interleaving mid-batch. The value of these methods is the uniform
// BatchStore contract: a consumer written against BatchStore drives all
// four kinds (and the network client) without per-kind switches.
//
// Argument validation matches internal/shard: mismatched key/value lengths
// and wrongly sized result slices panic, nil out/removed slices discard
// results, and a nil values/found pair on LookupBatchInto is rejected
// because a lookup with no destination answers nothing.

// insertBatchInto loops a store's Insert over the batch.
func insertBatchInto(s Store, keys, values []uint64, out []InsertResult) {
	if len(keys) != len(values) {
		panic("mccuckoo: batch insert called with mismatched key/value lengths")
	}
	if out != nil && len(out) != len(keys) {
		panic("mccuckoo: batch result slice has wrong length")
	}
	for i, k := range keys {
		r := s.Insert(k, values[i])
		if out != nil {
			out[i] = r
		}
	}
}

// lookupBatchInto loops a store's Lookup over the batch.
func lookupBatchInto(s Store, keys, values []uint64, found []bool) {
	if len(values) != len(keys) || len(found) != len(keys) {
		panic("mccuckoo: batch lookup result slices have wrong length")
	}
	for i, k := range keys {
		values[i], found[i] = s.Lookup(k)
	}
}

// deleteBatchInto loops a store's Delete over the batch.
func deleteBatchInto(s Store, keys []uint64, removed []bool) {
	if removed != nil && len(removed) != len(keys) {
		panic("mccuckoo: batch result slice has wrong length")
	}
	for i, k := range keys {
		ok := s.Delete(k)
		if removed != nil {
			removed[i] = ok
		}
	}
}

// insertBatch allocates the result slice and loops.
func insertBatch(s Store, keys, values []uint64) []InsertResult {
	out := make([]InsertResult, len(keys))
	insertBatchInto(s, keys, values, out)
	return out
}

// lookupBatch allocates the result slices and loops.
func lookupBatch(s Store, keys []uint64) ([]uint64, []bool) {
	values := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	lookupBatchInto(s, keys, values, found)
	return values, found
}

// deleteBatch allocates the result slice and loops.
func deleteBatch(s Store, keys []uint64) []bool {
	removed := make([]bool, len(keys))
	deleteBatchInto(s, keys, removed)
	return removed
}

// InsertBatch stores every keys[i]/values[i] pair, one Insert at a time.
// Results come back in input order. len(values) must equal len(keys).
func (t *Table) InsertBatch(keys, values []uint64) []InsertResult {
	return insertBatch(t, keys, values)
}

// InsertBatchInto is InsertBatch writing outcomes into out, which must be
// nil (discard outcomes) or exactly len(keys) long.
func (t *Table) InsertBatchInto(keys, values []uint64, out []InsertResult) {
	insertBatchInto(t, keys, values, out)
}

// LookupBatch answers every key. values[i], found[i] correspond to keys[i].
func (t *Table) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	return lookupBatch(t, keys)
}

// LookupBatchInto is LookupBatch writing answers into values and found,
// each of which must be exactly len(keys) long.
func (t *Table) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	lookupBatchInto(t, keys, values, found)
}

// DeleteBatch removes every key. removed[i] reports whether keys[i] was
// present.
func (t *Table) DeleteBatch(keys []uint64) (removed []bool) {
	return deleteBatch(t, keys)
}

// DeleteBatchInto is DeleteBatch writing results into removed, which must
// be nil (discard results) or exactly len(keys) long.
func (t *Table) DeleteBatchInto(keys []uint64, removed []bool) {
	deleteBatchInto(t, keys, removed)
}

// InsertBatch stores every keys[i]/values[i] pair, one Insert at a time.
// Results come back in input order. len(values) must equal len(keys).
func (t *Blocked) InsertBatch(keys, values []uint64) []InsertResult {
	return insertBatch(t, keys, values)
}

// InsertBatchInto is InsertBatch writing outcomes into out, which must be
// nil (discard outcomes) or exactly len(keys) long.
func (t *Blocked) InsertBatchInto(keys, values []uint64, out []InsertResult) {
	insertBatchInto(t, keys, values, out)
}

// LookupBatch answers every key. values[i], found[i] correspond to keys[i].
func (t *Blocked) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	return lookupBatch(t, keys)
}

// LookupBatchInto is LookupBatch writing answers into values and found,
// each of which must be exactly len(keys) long.
func (t *Blocked) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	lookupBatchInto(t, keys, values, found)
}

// DeleteBatch removes every key. removed[i] reports whether keys[i] was
// present.
func (t *Blocked) DeleteBatch(keys []uint64) (removed []bool) {
	return deleteBatch(t, keys)
}

// DeleteBatchInto is DeleteBatch writing results into removed, which must
// be nil (discard results) or exactly len(keys) long.
func (t *Blocked) DeleteBatchInto(keys []uint64, removed []bool) {
	deleteBatchInto(t, keys, removed)
}

// InsertBatch stores every keys[i]/values[i] pair under the write lock,
// taken once per element so readers interleave mid-batch. The single-writer
// contract of Insert applies to the whole batch.
func (c *Concurrent) InsertBatch(keys, values []uint64) []InsertResult {
	return insertBatch(c, keys, values)
}

// InsertBatchInto is InsertBatch writing outcomes into out, which must be
// nil (discard outcomes) or exactly len(keys) long.
func (c *Concurrent) InsertBatchInto(keys, values []uint64, out []InsertResult) {
	insertBatchInto(c, keys, values, out)
}

// LookupBatch answers every key under the shared read lock, taken once per
// element. values[i], found[i] correspond to keys[i].
func (c *Concurrent) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	return lookupBatch(c, keys)
}

// LookupBatchInto is LookupBatch writing answers into values and found,
// each of which must be exactly len(keys) long.
func (c *Concurrent) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	lookupBatchInto(c, keys, values, found)
}

// DeleteBatch removes every key under the write lock, taken once per
// element. removed[i] reports whether keys[i] was present.
func (c *Concurrent) DeleteBatch(keys []uint64) (removed []bool) {
	return deleteBatch(c, keys)
}

// DeleteBatchInto is DeleteBatch writing results into removed, which must
// be nil (discard results) or exactly len(keys) long.
func (c *Concurrent) DeleteBatchInto(keys []uint64, removed []bool) {
	deleteBatchInto(c, keys, removed)
}

// outcomeScratch pools the kv.Outcome buffers Sharded.InsertBatchInto uses
// to translate internal outcomes into public InsertResults without a fresh
// allocation per batch.
var outcomeScratch sync.Pool

// InsertBatchInto is Sharded.InsertBatch writing outcomes into out, which
// must be nil (discard outcomes) or exactly len(keys) long. Like the other
// Into variants it performs no allocation of its own in steady state; the
// shard grouping buffers and the outcome translation buffer are pooled.
func (s *Sharded) InsertBatchInto(keys, values []uint64, out []InsertResult) {
	if out == nil {
		s.inner.InsertBatchInto(keys, values, nil)
		return
	}
	if len(out) != len(keys) {
		panic("mccuckoo: batch result slice has wrong length")
	}
	buf, _ := outcomeScratch.Get().(*[]kv.Outcome)
	if buf == nil || cap(*buf) < len(keys) {
		b := make([]kv.Outcome, len(keys))
		buf = &b
	}
	oc := (*buf)[:len(keys)]
	s.inner.InsertBatchInto(keys, values, oc)
	for i, o := range oc {
		out[i] = fromOutcome(o)
	}
	outcomeScratch.Put(buf)
}

// LookupBatchInto is Sharded.LookupBatch writing answers into values and
// found, each of which must be exactly len(keys) long. Each touched
// shard's read lock is taken once.
func (s *Sharded) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	s.inner.LookupBatchInto(keys, values, found)
}

// DeleteBatchInto is Sharded.DeleteBatch writing results into removed,
// which must be nil (discard results) or exactly len(keys) long. Each
// touched shard's write lock is taken once.
func (s *Sharded) DeleteBatchInto(keys []uint64, removed []bool) {
	s.inner.DeleteBatchInto(keys, removed)
}
