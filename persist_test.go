package mccuckoo

import (
	"bytes"
	"testing"

	"mccuckoo/internal/hashutil"
)

func TestPublicSnapshotRoundTrip(t *testing.T) {
	tab, err := New(600, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 400)
	s := uint64(12)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i]*2)
	}
	for _, k := range keys[:100] {
		tab.Delete(k)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() || got.Traffic() != tab.Traffic() {
		t.Fatalf("state differs after load: Len %d/%d", got.Len(), tab.Len())
	}
	for _, k := range keys[100:] {
		if v, ok := got.Lookup(k); !ok || v != k*2 {
			t.Fatalf("key %#x lost across public snapshot", k)
		}
	}
}

func TestPublicBlockedSnapshotRoundTrip(t *testing.T) {
	tab, err := NewBlocked(540, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(14)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i])
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBlocked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := got.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
	// Cross-kind load must fail cleanly.
	buf.Reset()
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("Load accepted a blocked snapshot")
	}
}

func TestPublicGrow(t *testing.T) {
	tab, err := New(300, WithSeed(15), WithMaxLoop(50))
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(16)
	keys := make([]uint64, 280)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		tab.Insert(keys[i], keys[i])
	}
	if err := tab.Grow(4); err != nil {
		t.Fatal(err)
	}
	if tab.Capacity() < 1200 {
		t.Fatalf("capacity %d after Grow(4)", tab.Capacity())
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost across Grow", k)
		}
	}
	if err := tab.Grow(0.1); err == nil {
		t.Error("shrink factor accepted")
	}
	b, err := NewBlocked(360, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(1, 2)
	if err := b.Grow(2); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Lookup(1); !ok || v != 2 {
		t.Fatal("blocked Grow lost the item")
	}
}

func TestPublicInsertPathwise(t *testing.T) {
	tab, err := New(900, WithSeed(18), WithUniqueKeys())
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(19)
	keys := make([]uint64, 800)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		if tab.InsertPathwise(keys[i], keys[i]).Status == Failed {
			t.Fatal("pathwise insert failed")
		}
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
	c := NewConcurrent(tab)
	extra := hashutil.SplitMix64(&s)
	if c.InsertPathwise(extra, 1).Status == Failed {
		t.Fatal("concurrent pathwise insert failed")
	}
	if _, ok := c.Lookup(extra); !ok {
		t.Fatal("concurrent pathwise insert lost")
	}
}
