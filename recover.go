package mccuckoo

import (
	"errors"
	"io"

	"mccuckoo/internal/core"
	"mccuckoo/internal/shard"
)

// This file is the public fault-tolerance surface: typed snapshot rejection,
// crash-safe file persistence, and online repair of the derived on-chip
// state. See DESIGN.md "Failure model & recovery" for the model behind it.

// CorruptError is the typed error every snapshot loader returns when the
// input is truncated, bit-flipped, internally inconsistent, or out of the
// format's bounds. Loaders never panic on garbage and never return a
// silently-wrong table. Detect it with errors.As.
type CorruptError = core.CorruptError

// RepairReport summarizes what a Repair pass rebuilt; see the field docs on
// the underlying type.
type RepairReport = core.RepairReport

// recordCorrupt counts a snapshot rejection in tel's corrupt-load counter
// when the rejection is a *CorruptError (I/O errors are not corruption), and
// passes err through either way.
func recordCorrupt(tel *Telemetry, err error) error {
	if tel != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			tel.sink.RecordCorruptLoad()
		}
	}
	return err
}

// Repair rebuilds the table's derived state — copy counters, stash flags,
// size/copies bookkeeping — purely from the authoritative off-chip buckets
// and stash. It is the recovery path for on-chip state loss (the counters
// are the only record a deletion leaves, so deletions whose counters are
// corrupted back to live may roll back; see DESIGN.md). The report says what
// changed; an all-zero report means the table was already consistent. With
// telemetry attached, the report is also recorded in the repair counters.
func (t *Table) Repair() RepairReport {
	rep := t.inner.Repair()
	t.sink.RecordRepair(rep)
	return rep
}

// Repair rebuilds the blocked table's derived state, additionally rebuilding
// the per-copy slot-hint vectors. Semantics as Table.Repair.
func (t *Blocked) Repair() RepairReport {
	rep := t.inner.Repair()
	t.sink.RecordRepair(rep)
	return rep
}

// SaveFile writes a crash-safe snapshot to path: the bytes go to a temp file
// in the same directory, are fsynced, and are atomically renamed over path.
// A crash mid-save leaves the previous file intact, never a torn snapshot.
func (t *Table) SaveFile(path string) error { return t.inner.SaveFile(path) }

// SaveFile writes a crash-safe snapshot of the blocked table to path.
func (t *Blocked) SaveFile(path string) error { return t.inner.SaveFile(path) }

// LoadFile restores a single-slot table from a SaveFile snapshot. On top of
// Load's checksum and bounds validation it rejects trailing bytes after the
// snapshot end. Any rejection is a *CorruptError. Options behave as in Load:
// structural options are ignored (the snapshot carries its configuration);
// WithTelemetry attaches a collector and counts corrupt rejections.
func LoadFile(path string, opts ...Option) (*Table, error) {
	tel, err := loadOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.LoadFile(path)
	if err != nil {
		return nil, recordCorrupt(tel, err)
	}
	t := &Table{inner: inner}
	t.attachTelemetry(tel)
	return t, nil
}

// LoadBlockedFile restores a blocked table from a SaveFile snapshot. Options
// behave as in Load.
func LoadBlockedFile(path string, opts ...Option) (*Blocked, error) {
	tel, err := loadOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.LoadBlockedFile(path)
	if err != nil {
		return nil, recordCorrupt(tel, err)
	}
	t := &Blocked{inner: inner}
	t.attachTelemetry(tel)
	return t, nil
}

// Grow grows every shard by growFactor, each under its own write lock.
// Shards grow independently; the table keeps serving on all other shards
// while one rebuilds.
func (s *Sharded) Grow(growFactor float64) error { return s.inner.Grow(growFactor) }

// Repair runs Repair on every shard under its write lock and returns the
// merged report.
func (s *Sharded) Repair() RepairReport { return s.inner.Repair() }

// WriteTo serializes all shards as one snapshot (implements io.WriterTo).
// Each shard is serialized under its read lock, so every shard's content is
// individually consistent; quiesce writers for a cross-shard-consistent
// snapshot.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) { return s.inner.WriteTo(w) }

// SaveFile writes a crash-safe snapshot of all shards to path, with the same
// temp-file + fsync + atomic-rename guarantee as Table.SaveFile.
func (s *Sharded) SaveFile(path string) error { return s.inner.SaveFile(path) }

// LoadSharded restores a sharded table from a snapshot written by
// Sharded.WriteTo. Shard count, routing seed, and every shard's full state
// travel with the snapshot. Options behave as in Load.
func LoadSharded(r io.Reader, opts ...Option) (*Sharded, error) {
	tel, err := loadOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := shard.Load(r)
	if err != nil {
		return nil, recordCorrupt(tel, err)
	}
	s := &Sharded{inner: inner}
	s.attachTelemetry(tel)
	return s, nil
}

// LoadShardedFile restores a sharded table from a SaveFile snapshot,
// rejecting trailing bytes after the snapshot end. Options behave as in
// Load.
func LoadShardedFile(path string, opts ...Option) (*Sharded, error) {
	tel, err := loadOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := shard.LoadFile(path)
	if err != nil {
		return nil, recordCorrupt(tel, err)
	}
	s := &Sharded{inner: inner}
	s.attachTelemetry(tel)
	return s, nil
}

// Ensure the io import stays honest about what this file exposes.
var _ io.WriterTo = (*Sharded)(nil)
