package mccuckoo

import (
	"fmt"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/shard"
)

// Sharded is an N-way hash-partitioned McCuckoo table, safe for concurrent
// use by any number of goroutines. Where Concurrent serializes every
// mutation behind one global lock, Sharded routes each key to one of N
// independent sub-tables (N a power of two), each behind its own
// reader/writer lock: writers on different shards proceed in parallel, and
// McCuckoo's counter-guided kick paths keep each shard's critical sections
// short. This is the table to use when multiple goroutines insert and
// delete under load; use Concurrent when a single writer feeds many
// readers.
//
// Shard routing hashes the key with a dedicated salted finalizer and takes
// the top bits, while the d candidate buckets inside a shard come from the
// BOB hash family — so the shard choice never correlates with in-shard
// placement and shards stay binomially balanced.
type Sharded struct {
	inner *shard.Sharded
}

// NewSharded creates a partitioned table of `shards` sub-tables (a power of
// two) with roughly `capacity` buckets in total. Options apply to every
// sub-table; each gets an independently derived hash seed.
func NewSharded(capacity, shards int, opts ...Option) (*Sharded, error) {
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("mccuckoo: shard count must be a power of two >= 1, got %d", shards)
	}
	if capacity < 8*shards {
		return nil, fmt.Errorf("mccuckoo: capacity %d too small for %d shards (need >= %d)",
			capacity, shards, 8*shards)
	}
	cfg, tel, err := buildConfig((capacity+shards-1)/shards, false, opts)
	if err != nil {
		return nil, err
	}
	cfg.Slots = 1
	baseSeed := cfg.Seed
	inner, err := shard.New(shards, baseSeed, func(i int) (shard.Inner, error) {
		scfg := cfg
		scfg.Seed = hashutil.Mix64(baseSeed + uint64(i)*0x9e3779b97f4a7c15)
		return core.New(scfg)
	})
	if err != nil {
		return nil, err
	}
	s := &Sharded{inner: inner}
	s.attachTelemetry(tel)
	return s, nil
}

// attachTelemetry wires tel into the sharded table (no-op for nil): every
// shard records its operations into tel's sink, and tel's gauges are live —
// each scrape reads the current state under the per-shard locks, so no
// sampling call is needed.
func (s *Sharded) attachTelemetry(tel *Telemetry) {
	if tel == nil {
		return
	}
	s.inner.AttachTelemetry(tel.sink)
	tel.sink.SetGaugeSource(s.inner.Gauges)
}

// Shards returns the partition count.
func (s *Sharded) Shards() int { return s.inner.NumShards() }

// Insert stores key/value under the owning shard's write lock, replacing
// the value if key is already present (unless WithUniqueKeys was set).
func (s *Sharded) Insert(key, value uint64) InsertResult {
	return fromOutcome(s.inner.Insert(key, value))
}

// Lookup returns the value stored for key. Lookups on different shards
// never contend; lookups on the same shard share its read lock.
func (s *Sharded) Lookup(key uint64) (uint64, bool) { return s.inner.Lookup(key) }

// Delete removes key under the owning shard's write lock.
func (s *Sharded) Delete(key uint64) bool { return s.inner.Delete(key) }

// InsertBatch stores every keys[i]/values[i] pair, grouping keys by shard
// and taking each touched shard's write lock once for the whole batch.
// Results come back in input order. len(values) must equal len(keys).
func (s *Sharded) InsertBatch(keys, values []uint64) []InsertResult {
	outcomes := s.inner.InsertBatch(keys, values)
	res := make([]InsertResult, len(outcomes))
	for i, o := range outcomes {
		res[i] = fromOutcome(o)
	}
	return res
}

// LookupBatch answers every key, taking each touched shard's read lock
// once. values[i], found[i] correspond to keys[i].
func (s *Sharded) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	return s.inner.LookupBatch(keys)
}

// DeleteBatch removes every key, taking each touched shard's write lock
// once. removed[i] reports whether keys[i] was present.
func (s *Sharded) DeleteBatch(keys []uint64) (removed []bool) {
	return s.inner.DeleteBatch(keys)
}

// Len returns the total number of live items across all shards.
func (s *Sharded) Len() int { return s.inner.Len() }

// Capacity returns the summed bucket capacity of all shards.
func (s *Sharded) Capacity() int { return s.inner.Capacity() }

// LoadRatio returns Len()/Capacity().
func (s *Sharded) LoadRatio() float64 { return s.inner.LoadRatio() }

// StashLen returns the summed stash population of all shards.
func (s *Sharded) StashLen() int { return s.inner.StashLen() }

// Stats returns operation counts aggregated over all shards.
func (s *Sharded) Stats() Stats { return fromStats(s.inner.Stats()) }

// Range calls fn for every distinct live item until fn returns false. Each
// shard is iterated under its read lock, so every shard's view is
// internally consistent; the iteration is not an atomic snapshot across
// shards.
func (s *Sharded) Range(fn func(key, value uint64) bool) { s.inner.Range(fn) }

// CopyHistogram returns how many items currently have 1, 2, ..., d copies
// (index 0 unused), merged across all shards; each shard is read under its
// read lock.
func (s *Sharded) CopyHistogram() []int { return s.inner.CopyHistogram() }

// StashFlagDensity returns the fraction of buckets (across all shards) whose
// stash flag is set — the false-positive pressure on the stash pre-screen.
func (s *Sharded) StashFlagDensity() float64 { return s.inner.StashFlagDensity() }

// ShardStat describes one shard: population, load, stash depth and flag
// density, kick-path work, read-path traffic, and lock-acquisition counts.
type ShardStat struct {
	Shard            int
	Items            int
	Capacity         int
	LoadRatio        float64
	StashLen         int
	StashFlagDensity float64
	Kicks            int64
	Lookups          int64
	Hits             int64
	ReadLocks        int64
	WriteLocks       int64
}

// ShardStats aggregates per-shard statistics. MinLoad/MaxLoad expose the
// routing balance across shards; when every shard is empty they are both
// exactly 0 (never negative or NaN), so 0/0 reads as "idle table".
type ShardStats struct {
	Shards     []ShardStat
	Items      int
	Capacity   int
	LoadRatio  float64
	MinLoad    float64
	MaxLoad    float64
	StashLen   int
	Kicks      int64
	Lookups    int64
	Hits       int64
	ReadLocks  int64
	WriteLocks int64
}

// ShardStats captures a per-shard statistics snapshot (consistent per
// shard, not atomically consistent across shards).
func (s *Sharded) ShardStats() ShardStats {
	st := s.inner.ShardStats()
	out := ShardStats{
		Shards:    make([]ShardStat, len(st.Shards)),
		Items:     st.Items,
		Capacity:  st.Capacity,
		LoadRatio: st.LoadRatio,
		MinLoad:   st.MinLoad,
		MaxLoad:   st.MaxLoad,
		StashLen:  st.StashLen,
		Kicks:     st.Kicks,
		Lookups:   st.Lookups,
		Hits:      st.Hits,
		ReadLocks: st.ReadLocks, WriteLocks: st.WriteLocks,
	}
	for i, sh := range st.Shards {
		out.Shards[i] = ShardStat{
			Shard:            sh.Shard,
			Items:            sh.Items,
			Capacity:         sh.Capacity,
			LoadRatio:        sh.LoadRatio,
			StashLen:         sh.StashLen,
			StashFlagDensity: sh.StashFlagDensity,
			Kicks:            sh.Ops.Kicks,
			Lookups:          sh.Ops.Lookups + sh.Lookups,
			Hits:             sh.Ops.Hits + sh.Hits,
			ReadLocks:        sh.ReadLocks, WriteLocks: sh.WriteLocks,
		}
	}
	return out
}
