#!/bin/sh
# ci.sh — the repo's verification gate.
#
# Tier-1 (every PR must keep this green): formatting + module hygiene +
# vet + mcvet + build + full test suite.
# mcvet gate: the repo-specific analyzers (cmd/mcvet) enforce McCuckoo's
# own invariants — zero-allocation hot paths, lock discipline around the
# shard tables, no mixed atomic/plain access, counter/flag writes only
# through sanctioned setters, and deterministic snapshot/repair paths. It
# runs before the test suite because its findings are cheaper to read than
# the test failures they predict.
# Race gate: the concurrency-bearing packages (internal/core's RWMutex
# wrapper and pathwise inserts, internal/shard's partitioned table,
# internal/faultinject which drives both, internal/wire's pipelined
# server/client — TestServerUnderTrafficWithScrape is the
# server-under-traffic smoke, a client fleet hammering a telemetry-scraped
# sharded table — internal/netchaos's fault-injecting conn wrappers, and
# internal/cluster, whose TestClusterKillNodeConvergence runs a 3-node
# replicated cluster through mixed traffic, a mid-run node kill with zero
# failed reads, and a snapshot-restart catch-up, and whose
# TestChaosPartitionWritesSurviveAndSweepHeals is the chaos drill — a
# seeded partition with breaker-degraded writes, then anti-entropy
# convergence) run again under the race detector, which is what actually
# exercises the reader/writer interleavings their tests stage. Test gates
# run with -shuffle=on so inter-test ordering dependencies cannot hide.
# Chaos smoke: the short-mode netchaos drill (seeded partition + heal +
# digest-equality) runs standalone so the fault-injection layer itself is
# exercised — and visibly named — on every run.
# Trace smoke: a traced mctrace replay against a live two-node replicated
# pair, asserting the wire-propagated context yields a cross-node span
# tree — the distributed-tracing tentpole end to end.
# Fuzz smoke: short bounded runs of the snapshot-loader and wire-frame
# fuzzers so format changes that break the rejection paths fail in CI,
# not in a long background fuzz. The wire-frame corpus includes traced
# frames (flag bit 0x40 + 16-byte context prefix) and their rejection
# cases.
# Benchmark smoke: the telemetry and trace benchmarks run once so the
# disabled-path zero-allocation claims and the enabled-path overheads stay
# measurable (the hard allocation assertions live in
# TestDisabledPathZeroAlloc and TestUntracedPathZeroAlloc).
# Perf gate: cmd/mcperf reruns the seeded core and wire suites at reduced
# scale and compares every series against the committed BENCH_core.json /
# BENCH_wire.json baselines (DESIGN.md §14); regressions beyond the
# per-scale noise band fail the build, REFRESH_BASELINE=1 re-records.
set -eu

# say prints the gate banner and, for every gate after the first, the
# wall-clock seconds the previous gate took — so a slow gate is visible
# in the CI log without rerunning anything under time(1).
ci_start="$(date +%s)"
gate_start=""
say() {
	now="$(date +%s)"
	if [ -n "${gate_start}" ]; then
		printf '    (%ss)\n' "$((now - gate_start))"
	fi
	gate_start="${now}"
	printf '==> %s\n' "$*"
}

say "gofmt: checking formatting"
unformatted="$(gofmt -l .)"
if [ -n "${unformatted}" ]; then
	printf 'gofmt: the following files need formatting:\n%s\n' "${unformatted}" >&2
	exit 1
fi

say "go mod tidy: checking module hygiene"
go mod tidy -diff

say "go vet: stock static analysis"
go vet ./...

say "mcvet: repo-specific invariant analysis"
# -json emits one object per finding, suppressed ones included; the gate
# summarises counts and still fails on any unsuppressed finding (mcvet's
# own exit status is preserved by capturing before the pipeline).
mcvet_out="$(mktemp)"
mcvet_rc=0
go run ./cmd/mcvet -json ./... >"${mcvet_out}" || mcvet_rc=$?
mcvet_total="$(wc -l <"${mcvet_out}")"
mcvet_supp="$(grep -c '"suppressed":true' "${mcvet_out}" || true)"
printf 'mcvet: %s findings, %s suppressed, %s unsuppressed\n' \
	"${mcvet_total}" "${mcvet_supp}" "$((mcvet_total - mcvet_supp))"
if [ "${mcvet_rc}" -ne 0 ]; then
	grep -v '"suppressed":true' "${mcvet_out}" >&2 || true
	rm -f "${mcvet_out}"
	exit "${mcvet_rc}"
fi
rm -f "${mcvet_out}"

say "go build: compiling all packages"
go build ./...

say "go test: full suite"
go test -shuffle=on ./...

say "go test -race: concurrency-bearing packages"
# The ./internal/telemetry/... wildcard covers the trace subpackage, whose
# seqlock span ring and concurrent-scrape tests are race-gated here.
go test -race -shuffle=on ./internal/core/... ./internal/shard/... ./internal/faultinject/... ./internal/telemetry/... ./internal/wire/... ./internal/netchaos/... ./internal/cluster/...

say "chaos smoke: seeded partition + heal + digest equality"
go test -race -short -run 'TestChaos|TestNetchaos' ./internal/netchaos/... ./internal/cluster/...

say "trace smoke: traced replay over a two-node cluster"
go test -race -short -count=1 -run 'TestTracedClusterReplaySmoke' ./cmd/mctrace

say "fuzz smoke: snapshot loader"
go test -run='^$' -fuzz=FuzzLoad -fuzztime=5s ./internal/core

say "fuzz smoke: wire frame decoder"
go test -run='^$' -fuzz=FuzzWireFrame -fuzztime=5s ./internal/wire

say "benchmark smoke: telemetry overhead"
go test -run='^$' -bench=Telemetry -benchtime=1x ./internal/telemetry

say "benchmark smoke: trace overhead"
go test -run='^$' -bench=Trace -benchtime=1x ./internal/telemetry/trace

# Perf gate (DESIGN.md §14): the seeded suites rerun at reduced scale and
# every series is compared against the committed baselines with one verdict
# line each; a regression beyond the per-scale noise band — or any
# allocation on a zero-alloc series — fails the build. Baselines are
# refreshed deliberately, never silently: REFRESH_BASELINE=1 ./ci.sh
# re-records BENCH_core.json and BENCH_wire.json at full scale instead of
# checking, and the diff is reviewed like any other code change.
if [ "${REFRESH_BASELINE:-0}" = "1" ]; then
	say "perf gate: refreshing baselines (REFRESH_BASELINE=1)"
	go run ./cmd/mcperf record -suite core -out BENCH_core.json
	go run ./cmd/mcperf record -suite wire -out BENCH_wire.json
	printf 'perf gate: baselines refreshed; review and commit the BENCH diffs\n'
else
	# A failing suite is retried (3 attempts): a genuine regression is
	# deterministic and fails every run, while a transient load spike on a
	# shared CI machine (another tenant, a hot build cache) does not.
	perf_check() {
		for attempt in 1 2 3; do
			if go run ./cmd/mcperf check -suite "$1" -baseline "$2" -quick; then
				return 0
			fi
			if [ "${attempt}" -lt 3 ]; then
				printf 'perf gate: %s check failed (attempt %s/3); retrying to rule out transient load\n' "$1" "${attempt}"
			fi
		done
		return 1
	}
	# Let the machine settle after the heavy test gates before timing.
	sleep 3
	say "perf gate: core suite vs BENCH_core.json"
	perf_check core BENCH_core.json
	say "perf gate: wire suite vs BENCH_wire.json"
	perf_check wire BENCH_wire.json
fi

say "ci.sh: all gates green ($(($(date +%s) - ci_start))s total)"
