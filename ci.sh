#!/bin/sh
# ci.sh — the repo's verification gate.
#
# Tier-1 (every PR must keep this green): build + vet + full test suite.
# Race gate: the concurrency-bearing packages (internal/core's RWMutex
# wrapper and pathwise inserts, internal/shard's partitioned table, and
# internal/faultinject which drives both) run again under the race
# detector, which is what actually exercises the reader/writer
# interleavings their tests stage.
# Fuzz smoke: a short bounded run of the snapshot-loader fuzzer so format
# changes that break the rejection paths fail in CI, not in a long
# background fuzz.
# Benchmark smoke: the telemetry benchmarks run once so the disabled-path
# zero-allocation claim and the enabled-path overhead stay measurable (the
# hard allocation assertion lives in TestDisabledPathZeroAlloc).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/... ./internal/shard/... ./internal/faultinject/... ./internal/telemetry/...
go test -run='^$' -fuzz=FuzzLoad -fuzztime=5s ./internal/core
go test -run='^$' -bench=Telemetry -benchtime=1x ./internal/telemetry
