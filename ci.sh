#!/bin/sh
# ci.sh — the repo's verification gate.
#
# Tier-1 (every PR must keep this green): build + vet + full test suite.
# Race gate: the concurrency-bearing packages (internal/core's RWMutex
# wrapper and pathwise inserts, internal/shard's partitioned table) run
# again under the race detector, which is what actually exercises the
# reader/writer interleavings their tests stage.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/... ./internal/shard/...
